//===- support/ThreadAnnotations.h - Clang TSA capability layer *- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clang Thread Safety Analysis annotations plus the capability-wrapped
/// synchronization primitives the whole concurrency surface uses. The
/// engine's locking discipline — which mutex guards which fields, which
/// methods require which capability — is declared here once and checked
/// at compile time by the `-Wthread-safety -Werror` CI lane; on GCC (and
/// any non-Clang compiler) every macro expands to nothing, so the
/// annotations are free and cannot change codegen
/// (tests/annotations_test.cpp pins both properties).
///
/// Usage pattern across the tree:
///
///   Mutex M;
///   int Guarded NETUPD_GUARDED_BY(M);
///   void touch() { MutexLock Lock(M); ++Guarded; }
///   void touchLocked() NETUPD_REQUIRES(M) { ++Guarded; }
///
/// The wrappers deliberately mirror the std types they hold (lock /
/// unlock / try_lock, shared variants) so `obs::timedLock` and the other
/// generic helpers keep working unchanged; CondVar replaces
/// std::condition_variable for waits on a wrapped Mutex.
///
/// Suppression policy (see docs/ARCHITECTURE.md, "Static analysis &
/// sanitizers"): NETUPD_NO_THREAD_SAFETY_ANALYSIS is reserved for the
/// try-lock-first helpers in obs/Metrics.h, whose interface annotations
/// still declare the capability transfer — a new use anywhere else is a
/// reviewed decision, not a drive-by.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_THREADANNOTATIONS_H
#define NETUPD_SUPPORT_THREADANNOTATIONS_H

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---- Attribute macros ------------------------------------------------------
//
// The standard Clang TSA macro set (the naming follows the Clang docs and
// abseil's thread_annotations.h). Every macro is a no-op unless the
// compiler is Clang with thread-safety attributes available.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define NETUPD_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef NETUPD_THREAD_ANNOTATION
#define NETUPD_THREAD_ANNOTATION(x) // Expands to nothing off-Clang.
#endif

/// Marks a type as a capability (a lockable resource).
#define NETUPD_CAPABILITY(x) NETUPD_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define NETUPD_SCOPED_CAPABILITY NETUPD_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding capability \p x.
#define NETUPD_GUARDED_BY(x) NETUPD_THREAD_ANNOTATION(guarded_by(x))

/// Pointee may only be accessed while holding capability \p x.
#define NETUPD_PT_GUARDED_BY(x) NETUPD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held (and does not release it).
#define NETUPD_REQUIRES(...)                                                 \
  NETUPD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define NETUPD_REQUIRES_SHARED(...)                                          \
  NETUPD_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (caller must not hold it).
#define NETUPD_ACQUIRE(...)                                                  \
  NETUPD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define NETUPD_ACQUIRE_SHARED(...)                                           \
  NETUPD_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (caller must hold it).
#define NETUPD_RELEASE(...)                                                  \
  NETUPD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define NETUPD_RELEASE_SHARED(...)                                           \
  NETUPD_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define NETUPD_RELEASE_GENERIC(...)                                         \
  NETUPD_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function attempts the capability; holds it iff the return value equals
/// the first macro argument.
#define NETUPD_TRY_ACQUIRE(...)                                              \
  NETUPD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define NETUPD_TRY_ACQUIRE_SHARED(...)                                       \
  NETUPD_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention).
#define NETUPD_EXCLUDES(...)                                                 \
  NETUPD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares the capability is held without acquiring (runtime-checked
/// fatal assertion elsewhere).
#define NETUPD_ASSERT_CAPABILITY(x)                                          \
  NETUPD_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define NETUPD_RETURN_CAPABILITY(x)                                          \
  NETUPD_THREAD_ANNOTATION(lock_returned(x))

/// Disables analysis inside one function. Reserved for the documented
/// try-lock helpers; see the suppression policy in the file comment.
#define NETUPD_NO_THREAD_SAFETY_ANALYSIS                                     \
  NETUPD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace netupd {

// ---- Capability-wrapped primitives -----------------------------------------

/// std::mutex as a TSA capability. Same interface (BasicLockable +
/// Lockable), so generic helpers — obs::timedLock in particular — accept
/// it unchanged.
class NETUPD_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() NETUPD_ACQUIRE() { M.lock(); }
  void unlock() NETUPD_RELEASE() { M.unlock(); }
  bool try_lock() NETUPD_TRY_ACQUIRE(true) { return M.try_lock(); }

private:
  friend class CondVar;
  std::mutex M;
};

/// std::shared_mutex as a TSA capability (exclusive + shared modes).
class NETUPD_CAPABILITY("shared_mutex") SharedMutex {
public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex &) = delete;
  SharedMutex &operator=(const SharedMutex &) = delete;

  void lock() NETUPD_ACQUIRE() { M.lock(); }
  void unlock() NETUPD_RELEASE() { M.unlock(); }
  bool try_lock() NETUPD_TRY_ACQUIRE(true) { return M.try_lock(); }

  void lock_shared() NETUPD_ACQUIRE_SHARED() { M.lock_shared(); }
  void unlock_shared() NETUPD_RELEASE_SHARED() { M.unlock_shared(); }
  bool try_lock_shared() NETUPD_TRY_ACQUIRE_SHARED(true) {
    return M.try_lock_shared();
  }

private:
  std::shared_mutex M;
};

/// Scoped exclusive lock on a Mutex; the adopt form takes over a mutex
/// the caller already holds (the timedLock pattern: wait-profiled
/// acquisition, RAII release).
class NETUPD_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) NETUPD_ACQUIRE(M) : Mu(M) { Mu.lock(); }
  MutexLock(Mutex &M, std::adopt_lock_t) NETUPD_REQUIRES(M) : Mu(M) {}
  ~MutexLock() NETUPD_RELEASE() { Mu.unlock(); }

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

private:
  Mutex &Mu;
};

/// Scoped exclusive lock on a SharedMutex (the writer side).
class NETUPD_SCOPED_CAPABILITY SharedMutexLock {
public:
  explicit SharedMutexLock(SharedMutex &M) NETUPD_ACQUIRE(M) : Mu(M) {
    Mu.lock();
  }
  SharedMutexLock(SharedMutex &M, std::adopt_lock_t) NETUPD_REQUIRES(M)
      : Mu(M) {}
  ~SharedMutexLock() NETUPD_RELEASE() { Mu.unlock(); }

  SharedMutexLock(const SharedMutexLock &) = delete;
  SharedMutexLock &operator=(const SharedMutexLock &) = delete;

private:
  SharedMutex &Mu;
};

/// Scoped shared (reader) lock on a SharedMutex.
class NETUPD_SCOPED_CAPABILITY SharedReaderLock {
public:
  explicit SharedReaderLock(SharedMutex &M) NETUPD_ACQUIRE_SHARED(M)
      : Mu(M) {
    Mu.lock_shared();
  }
  SharedReaderLock(SharedMutex &M, std::adopt_lock_t)
      NETUPD_REQUIRES_SHARED(M)
      : Mu(M) {}
  ~SharedReaderLock() NETUPD_RELEASE_GENERIC() { Mu.unlock_shared(); }

  SharedReaderLock(const SharedReaderLock &) = delete;
  SharedReaderLock &operator=(const SharedReaderLock &) = delete;

private:
  SharedMutex &Mu;
};

/// Condition variable for waits on a wrapped Mutex. wait() keeps the
/// capability from the analysis's point of view (held on entry, held on
/// return); the internal release/reacquire is invisible, exactly like
/// std::condition_variable under a std::unique_lock.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  void wait(Mutex &M) NETUPD_REQUIRES(M) {
    std::unique_lock<std::mutex> Inner(M.M, std::adopt_lock);
    CV.wait(Inner);
    Inner.release(); // The caller's scope still owns the capability.
  }

  void notify_one() { CV.notify_one(); }
  void notify_all() { CV.notify_all(); }

private:
  std::condition_variable CV;
};

} // namespace netupd

#endif // NETUPD_SUPPORT_THREADANNOTATIONS_H
