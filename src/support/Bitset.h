//===- support/Bitset.h - Dynamic fixed-capacity bitset --------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dynamically-sized bitset used for maximally-consistent formula
/// sets (Section 5 of the paper) and for configuration masks in the
/// synthesis search (Section 4). Unlike std::vector<bool> it supports
/// hashing, word-level boolean algebra, and subset queries, all of which the
/// labeling model checker needs on its hot path.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_BITSET_H
#define NETUPD_SUPPORT_BITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace netupd {

/// Dynamically-sized bitset with value semantics and word-level operations.
///
/// The size is fixed at construction (or via resize); all binary operations
/// require both operands to have the same size.
class Bitset {
public:
  Bitset() = default;

  explicit Bitset(size_t NumBits) : NumBits(NumBits) {
    Words.resize(numWords(NumBits), 0);
  }

  /// Returns the number of bits this set can hold.
  size_t size() const { return NumBits; }

  /// Resizes to \p NewNumBits, zero-filling any new bits.
  void resize(size_t NewNumBits) {
    NumBits = NewNumBits;
    Words.resize(numWords(NewNumBits), 0);
    clearUnusedBits();
  }

  bool test(size_t Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / 64] >> (Idx % 64)) & 1;
  }

  void set(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / 64] |= (uint64_t(1) << (Idx % 64));
  }

  void reset(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / 64] &= ~(uint64_t(1) << (Idx % 64));
  }

  void assign(size_t Idx, bool Value) {
    if (Value)
      set(Idx);
    else
      reset(Idx);
  }

  /// Sets all bits to zero, keeping the size.
  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Returns true if no bit is set.
  bool none() const {
    for (uint64_t W : Words)
      if (W != 0)
        return false;
    return true;
  }

  bool any() const { return !none(); }

  /// Returns the number of set bits.
  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  /// Returns true if every bit set in \p Other is also set in *this.
  bool contains(const Bitset &Other) const {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if ((Other.Words[I] & ~Words[I]) != 0)
        return false;
    return true;
  }

  /// Returns true if *this and \p Other share at least one set bit.
  bool intersects(const Bitset &Other) const {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if ((Words[I] & Other.Words[I]) != 0)
        return true;
    return false;
  }

  Bitset &operator|=(const Bitset &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] |= Other.Words[I];
    return *this;
  }

  Bitset &operator&=(const Bitset &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= Other.Words[I];
    return *this;
  }

  Bitset &operator^=(const Bitset &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] ^= Other.Words[I];
    return *this;
  }

  friend Bitset operator|(Bitset A, const Bitset &B) { return A |= B; }
  friend Bitset operator&(Bitset A, const Bitset &B) { return A &= B; }
  friend Bitset operator^(Bitset A, const Bitset &B) { return A ^= B; }

  friend bool operator==(const Bitset &A, const Bitset &B) {
    return A.NumBits == B.NumBits && A.Words == B.Words;
  }
  friend bool operator!=(const Bitset &A, const Bitset &B) {
    return !(A == B);
  }

  /// Lexicographic order on the word representation; used to keep label
  /// sets sorted and deduplicated.
  friend bool operator<(const Bitset &A, const Bitset &B) {
    assert(A.NumBits == B.NumBits && "size mismatch");
    return A.Words < B.Words;
  }

  /// Hashes the bit contents (FNV-1a over the words).
  size_t hash() const {
    uint64_t H = 1469598103934665603ull;
    for (uint64_t W : Words) {
      H ^= W;
      H *= 1099511628211ull;
    }
    return static_cast<size_t>(H);
  }

  /// Renders as a 0/1 string with bit 0 leftmost; handy in test failures.
  std::string str() const {
    std::string S;
    S.reserve(NumBits);
    for (size_t I = 0; I != NumBits; ++I)
      S.push_back(test(I) ? '1' : '0');
    return S;
  }

private:
  static size_t numWords(size_t Bits) { return (Bits + 63) / 64; }

  void clearUnusedBits() {
    if (NumBits % 64 == 0 || Words.empty())
      return;
    Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

/// Hash functor so Bitset can key unordered containers.
struct BitsetHash {
  size_t operator()(const Bitset &B) const { return B.hash(); }
};

} // namespace netupd

#endif // NETUPD_SUPPORT_BITSET_H
