//===- support/Bitset.h - Dynamic fixed-capacity bitset --------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dynamically-sized bitset used for maximally-consistent formula
/// sets (Section 5 of the paper) and for configuration masks in the
/// synthesis search (Section 4). Unlike std::vector<bool> it supports
/// hashing, word-level boolean algebra, and subset queries, all of which the
/// labeling model checker needs on its hot path.
///
/// Storage is small-buffer-optimized: up to 128 bits (two words) live
/// inline with no heap allocation. That covers every synthesis-search
/// mask (one bit per update operation) and most label sets, so the DFS
/// hot loops — which copy, hash, and compare these sets per candidate —
/// stop exercising the allocator entirely; only oversized closures spill
/// to the heap. This is load-bearing for shard scaling: per-candidate
/// malloc/free was a measured contention source at 4 shards.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_BITSET_H
#define NETUPD_SUPPORT_BITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

namespace netupd {

/// Dynamically-sized bitset with value semantics and word-level operations.
///
/// The size is fixed at construction (or via resize); all binary operations
/// require both operands to have the same size.
class Bitset {
public:
  Bitset() = default;

  explicit Bitset(size_t NumBits) : NumBits(NumBits) {
    NW = static_cast<uint32_t>(numWords(NumBits));
    if (NW > InlineWords) {
      Heap = new uint64_t[NW]; // lint: naked-new-ok — SBO buffer, RAII-owned
      HeapCap = NW;
    }
    std::memset(words(), 0, NW * sizeof(uint64_t));
  }

  Bitset(const Bitset &O) : NumBits(O.NumBits), NW(O.NW) {
    if (NW > InlineWords) {
      Heap = new uint64_t[NW]; // lint: naked-new-ok — SBO buffer, RAII-owned
      HeapCap = NW;
    }
    std::memcpy(words(), O.words(), NW * sizeof(uint64_t));
  }

  Bitset(Bitset &&O) noexcept : NumBits(O.NumBits), NW(O.NW) {
    if (O.HeapCap) {
      Heap = O.Heap;
      HeapCap = O.HeapCap;
      O.HeapCap = 0;
    } else {
      std::memcpy(Inline, O.Inline, sizeof(Inline));
    }
    O.NumBits = 0;
    O.NW = 0;
  }

  Bitset &operator=(const Bitset &O) {
    if (this == &O)
      return *this;
    // Reuse the existing buffer when it fits — assignment into a
    // recycled Bitset (DFS frames, pool entries) is then allocation-free.
    if (O.NW > capacityWords()) {
      // lint: naked-new-ok — SBO buffer swap, RAII-owned by this Bitset
      uint64_t *NewHeap = new uint64_t[O.NW];
      if (HeapCap)
        delete[] Heap;
      Heap = NewHeap;
      HeapCap = O.NW;
    }
    NumBits = O.NumBits;
    NW = O.NW;
    std::memcpy(words(), O.words(), NW * sizeof(uint64_t));
    return *this;
  }

  Bitset &operator=(Bitset &&O) noexcept {
    if (this == &O)
      return *this;
    if (HeapCap)
      delete[] Heap;
    NumBits = O.NumBits;
    NW = O.NW;
    if (O.HeapCap) {
      Heap = O.Heap;
      HeapCap = O.HeapCap;
      O.HeapCap = 0;
    } else {
      HeapCap = 0;
      std::memcpy(Inline, O.Inline, sizeof(Inline));
    }
    O.NumBits = 0;
    O.NW = 0;
    return *this;
  }

  ~Bitset() {
    if (HeapCap)
      delete[] Heap;
  }

  /// Returns the number of bits this set can hold.
  size_t size() const { return NumBits; }

  /// Resizes to \p NewNumBits, zero-filling any new bits.
  void resize(size_t NewNumBits) {
    uint32_t NewNW = static_cast<uint32_t>(numWords(NewNumBits));
    if (NewNW > capacityWords()) {
      // lint: naked-new-ok — SBO buffer swap, RAII-owned by this Bitset
      uint64_t *NewHeap = new uint64_t[NewNW];
      std::memcpy(NewHeap, words(), NW * sizeof(uint64_t));
      if (HeapCap)
        delete[] Heap;
      Heap = NewHeap;
      HeapCap = NewNW;
    }
    if (NewNW > NW)
      std::memset(words() + NW, 0, (NewNW - NW) * sizeof(uint64_t));
    NW = NewNW;
    NumBits = NewNumBits;
    clearUnusedBits();
  }

  bool test(size_t Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (words()[Idx / 64] >> (Idx % 64)) & 1;
  }

  void set(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    words()[Idx / 64] |= (uint64_t(1) << (Idx % 64));
  }

  void reset(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    words()[Idx / 64] &= ~(uint64_t(1) << (Idx % 64));
  }

  void assign(size_t Idx, bool Value) {
    if (Value)
      set(Idx);
    else
      reset(Idx);
  }

  /// Sets all bits to zero, keeping the size.
  void clear() { std::memset(words(), 0, NW * sizeof(uint64_t)); }

  /// Returns true if no bit is set.
  bool none() const {
    const uint64_t *W = words();
    for (uint32_t I = 0; I != NW; ++I)
      if (W[I] != 0)
        return false;
    return true;
  }

  bool any() const { return !none(); }

  /// Returns the number of set bits.
  size_t count() const {
    size_t N = 0;
    const uint64_t *W = words();
    for (uint32_t I = 0; I != NW; ++I)
      N += static_cast<size_t>(__builtin_popcountll(W[I]));
    return N;
  }

  /// Returns true if every bit set in \p Other is also set in *this.
  bool contains(const Bitset &Other) const {
    assert(NumBits == Other.NumBits && "size mismatch");
    const uint64_t *A = words(), *B = Other.words();
    for (uint32_t I = 0; I != NW; ++I)
      if ((B[I] & ~A[I]) != 0)
        return false;
    return true;
  }

  /// Returns true if *this and \p Other share at least one set bit.
  bool intersects(const Bitset &Other) const {
    assert(NumBits == Other.NumBits && "size mismatch");
    const uint64_t *A = words(), *B = Other.words();
    for (uint32_t I = 0; I != NW; ++I)
      if ((A[I] & B[I]) != 0)
        return true;
    return false;
  }

  Bitset &operator|=(const Bitset &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    uint64_t *A = words();
    const uint64_t *B = Other.words();
    for (uint32_t I = 0; I != NW; ++I)
      A[I] |= B[I];
    return *this;
  }

  Bitset &operator&=(const Bitset &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    uint64_t *A = words();
    const uint64_t *B = Other.words();
    for (uint32_t I = 0; I != NW; ++I)
      A[I] &= B[I];
    return *this;
  }

  Bitset &operator^=(const Bitset &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    uint64_t *A = words();
    const uint64_t *B = Other.words();
    for (uint32_t I = 0; I != NW; ++I)
      A[I] ^= B[I];
    return *this;
  }

  friend Bitset operator|(Bitset A, const Bitset &B) { return A |= B; }
  friend Bitset operator&(Bitset A, const Bitset &B) { return A &= B; }
  friend Bitset operator^(Bitset A, const Bitset &B) { return A ^= B; }

  friend bool operator==(const Bitset &A, const Bitset &B) {
    if (A.NumBits != B.NumBits)
      return false;
    return std::memcmp(A.words(), B.words(), A.NW * sizeof(uint64_t)) == 0;
  }
  friend bool operator!=(const Bitset &A, const Bitset &B) {
    return !(A == B);
  }

  /// Lexicographic order on the word representation; used to keep label
  /// sets sorted and deduplicated.
  friend bool operator<(const Bitset &A, const Bitset &B) {
    assert(A.NumBits == B.NumBits && "size mismatch");
    const uint64_t *WA = A.words(), *WB = B.words();
    for (uint32_t I = 0; I != A.NW; ++I)
      if (WA[I] != WB[I])
        return WA[I] < WB[I];
    return false;
  }

  /// Hashes the bit contents (FNV-1a over the words).
  size_t hash() const {
    uint64_t H = 1469598103934665603ull;
    const uint64_t *W = words();
    for (uint32_t I = 0; I != NW; ++I) {
      H ^= W[I];
      H *= 1099511628211ull;
    }
    return static_cast<size_t>(H);
  }

  /// Number of 64-bit words backing this set.
  size_t numWords() const { return NW; }
  /// The \p I-th backing word (bit 64*I is its LSB). The wrong-set's
  /// watch-list probe iterates set bits through this.
  uint64_t word(size_t I) const {
    assert(I < NW);
    return words()[I];
  }

  /// Index of the lowest set bit, or size() when none is set. Indexes
  /// the wrong-set watch lists (support/ConcurrentSet.h).
  size_t firstSetBit() const {
    const uint64_t *W = words();
    for (uint32_t I = 0; I != NW; ++I)
      if (W[I] != 0)
        return I * 64 +
               static_cast<size_t>(__builtin_ctzll(W[I]));
    return NumBits;
  }

  /// Renders as a 0/1 string with bit 0 leftmost; handy in test failures.
  std::string str() const {
    std::string S;
    S.reserve(NumBits);
    for (size_t I = 0; I != NumBits; ++I)
      S.push_back(test(I) ? '1' : '0');
    return S;
  }

private:
  static constexpr uint32_t InlineWords = 2;

  static size_t numWords(size_t Bits) { return (Bits + 63) / 64; }

  uint64_t *words() { return HeapCap ? Heap : Inline; }
  const uint64_t *words() const { return HeapCap ? Heap : Inline; }
  uint32_t capacityWords() const { return HeapCap ? HeapCap : InlineWords; }

  void clearUnusedBits() {
    if (NumBits % 64 == 0 || NW == 0)
      return;
    words()[NW - 1] &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  size_t NumBits = 0;
  /// Active word count; bits [NumBits, 64*NW) of the last word are kept
  /// zero so memcmp/hash over whole words are content-exact.
  uint32_t NW = 0;
  /// Heap capacity in words; 0 = inline storage is active.
  uint32_t HeapCap = 0;
  union {
    uint64_t Inline[InlineWords] = {0, 0};
    uint64_t *Heap;
  };
};

/// Hash functor so Bitset can key unordered containers.
struct BitsetHash {
  size_t operator()(const Bitset &B) const { return B.hash(); }
};

} // namespace netupd

#endif // NETUPD_SUPPORT_BITSET_H
