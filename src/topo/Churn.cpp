//===- topo/Churn.cpp - Rolling-maintenance churn traces -------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "topo/Churn.h"

#include <cassert>
#include <utility>

using namespace netupd;

namespace {

/// Installs every flow of \p Base on the branch selected by \p OnFinal.
Config configFor(const Scenario &Base, const std::vector<uint8_t> &OnFinal) {
  Config C(Base.Topo.numSwitches());
  for (size_t I = 0, E = Base.Flows.size(); I != E; ++I) {
    const FlowSpec &F = Base.Flows[I];
    installPath(Base.Topo, C, F.Class,
                OnFinal[I] ? F.FinalPath : F.InitialPath, F.DstHost);
  }
  return C;
}

} // namespace

std::optional<ChurnTrace> netupd::makeChurnTrace(const Topology &Base,
                                                 Rng &R,
                                                 const ChurnOptions &Opts) {
  assert(Opts.NumFlows >= 1 && Opts.Steps >= 1 && "empty churn trace");
  DiamondOptions DOpts = Opts.Diamond;
  DOpts.NumFlows = Opts.NumFlows;
  DOpts.DisjointFlows = true; // Reroutes must not disturb other flows.
  std::optional<Scenario> BaseScenario =
      makeDiamondScenarioRetrying(Base, R, Opts.Kind, DOpts);
  if (!BaseScenario)
    return std::nullopt;

  ChurnTrace Trace;
  Trace.Steps.reserve(Opts.Steps);
  std::vector<uint8_t> OnFinal(Opts.NumFlows, 0);
  Config Current = configFor(*BaseScenario, OnFinal);

  for (unsigned Step = 0; Step != Opts.Steps; ++Step) {
    size_t Flip = static_cast<size_t>(R.nextBelow(Opts.NumFlows));
    std::vector<uint8_t> Next = OnFinal;
    Next[Flip] ^= 1;
    Config Target = configFor(*BaseScenario, Next);

    Scenario S;
    S.Topo = BaseScenario->Topo;
    S.Kind = BaseScenario->Kind;
    S.Initial = Current;
    S.Final = Target;
    S.Flows = BaseScenario->Flows;
    // Keep the per-flow path diagnostics honest for this step: the flipped
    // flow moves between its branches, every other flow stays put.
    for (size_t I = 0, E = S.Flows.size(); I != E; ++I) {
      const FlowSpec &F = BaseScenario->Flows[I];
      S.Flows[I].InitialPath = OnFinal[I] ? F.FinalPath : F.InitialPath;
      S.Flows[I].FinalPath = Next[I] ? F.FinalPath : F.InitialPath;
    }
    Trace.Steps.push_back(std::move(S));

    OnFinal = std::move(Next);
    Current = std::move(Target);
  }
  return Trace;
}
