//===- topo/Generators.cpp - Topology generators ---------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "topo/Generators.h"

#include "support/Strings.h"

#include <cassert>
#include <cmath>
#include <set>

using namespace netupd;

Topology netupd::buildFatTree(unsigned K) {
  assert(K >= 2 && K % 2 == 0 && "fat tree arity must be even");
  Topology T;
  unsigned Half = K / 2;

  // Cores first, then per-pod aggregation and edge switches.
  std::vector<SwitchId> Cores;
  for (unsigned C = 0; C != Half * Half; ++C)
    Cores.push_back(T.addSwitch(format("core%u", C)));

  for (unsigned Pod = 0; Pod != K; ++Pod) {
    std::vector<SwitchId> Aggs, Edges;
    for (unsigned A = 0; A != Half; ++A)
      Aggs.push_back(T.addSwitch(format("agg%u_%u", Pod, A)));
    for (unsigned E = 0; E != Half; ++E)
      Edges.push_back(T.addSwitch(format("edge%u_%u", Pod, E)));

    // Full bipartite edge-to-aggregation wiring inside the pod.
    for (SwitchId A : Aggs)
      for (SwitchId E : Edges)
        T.connectSwitches(A, E);

    // Aggregation switch A of each pod talks to core group A.
    for (unsigned A = 0; A != Half; ++A)
      for (unsigned C = 0; C != Half; ++C)
        T.connectSwitches(Aggs[A], Cores[A * Half + C]);
  }
  return T;
}

Topology netupd::buildClos(unsigned Leaves, unsigned Spines) {
  assert(Leaves >= 1 && Spines >= 1 && "empty Clos tier");
  Topology T;
  std::vector<SwitchId> Spine, Leaf;
  for (unsigned S = 0; S != Spines; ++S)
    Spine.push_back(T.addSwitch(format("spine%u", S)));
  for (unsigned L = 0; L != Leaves; ++L)
    Leaf.push_back(T.addSwitch(format("leaf%u", L)));
  for (SwitchId L : Leaf)
    for (SwitchId S : Spine)
      T.connectSwitches(L, S);
  return T;
}

Topology netupd::buildWan(const WanParams &P, Rng &R) {
  assert(P.Regions >= 1 && P.MeanRegionSize >= 3 &&
         "WAN needs at least one region of >= 3 PoPs");
  Topology T;

  // Each region is a ring of PoPs with random chords; its switch 0 is
  // the gateway PoP joined into the backbone.
  std::vector<SwitchId> Gateways;
  for (unsigned Reg = 0; Reg != P.Regions; ++Reg) {
    // Sizes spread over [Mean/2, 3*Mean/2], floored at a 3-PoP ring.
    unsigned Lo = std::max(3u, P.MeanRegionSize / 2);
    unsigned Size =
        Lo + static_cast<unsigned>(R.nextBelow(P.MeanRegionSize + 1));
    std::vector<SwitchId> Pops;
    for (unsigned I = 0; I != Size; ++I)
      Pops.push_back(T.addSwitch(format("r%u_pop%u", Reg, I)));
    Gateways.push_back(Pops[0]);
    for (unsigned I = 0; I != Size; ++I)
      T.connectSwitches(Pops[I], Pops[(I + 1) % Size]);
    unsigned Chords =
        static_cast<unsigned>(static_cast<double>(Size) * P.ChordFraction);
    for (unsigned C = 0; C != Chords; ++C) {
      unsigned A = static_cast<unsigned>(R.nextBelow(Size));
      unsigned B = static_cast<unsigned>(R.nextBelow(Size));
      // Skip self-loops and ring neighbours (already linked); duplicate
      // chords are harmless (parallel ports) but wasteful, so tolerate
      // only distinct pairs.
      if (A == B || (A + 1) % Size == B || (B + 1) % Size == A)
        continue;
      T.connectSwitches(Pops[A], Pops[B]);
    }
  }

  // Backbone: a ring over the gateways keeps the WAN connected, plus
  // random long-haul links for redundancy.
  if (P.Regions > 1) {
    for (unsigned Reg = 0; Reg != P.Regions; ++Reg)
      T.connectSwitches(Gateways[Reg], Gateways[(Reg + 1) % P.Regions]);
    unsigned Extra = P.Regions * P.ExtraBackboneLinks;
    for (unsigned L = 0; L != Extra; ++L) {
      unsigned A = static_cast<unsigned>(R.nextBelow(P.Regions));
      unsigned B = static_cast<unsigned>(R.nextBelow(P.Regions));
      if (A == B || (A + 1) % P.Regions == B || (B + 1) % P.Regions == A)
        continue;
      T.connectSwitches(Gateways[A], Gateways[B]);
    }
  }
  return T;
}

Topology netupd::buildSmallWorld(unsigned N, unsigned K, double P, Rng &R) {
  assert(N >= 4 && "small-world graphs need at least 4 nodes");
  assert(K >= 2 && K % 2 == 0 && K < N && "ring degree must be even and < N");

  Topology T;
  for (unsigned I = 0; I != N; ++I)
    T.addSwitch(format("sw%u", I));

  std::set<std::pair<unsigned, unsigned>> Edges;
  auto CanonicalEdge = [](unsigned A, unsigned B) {
    return A < B ? std::make_pair(A, B) : std::make_pair(B, A);
  };

  // Ring lattice: node i to i+1 .. i+K/2 (mod N). The immediate ring
  // (offset 1) is kept un-rewired so the graph stays connected.
  for (unsigned I = 0; I != N; ++I)
    Edges.insert(CanonicalEdge(I, (I + 1) % N));
  for (unsigned Offset = 2; Offset <= K / 2; ++Offset) {
    for (unsigned I = 0; I != N; ++I) {
      unsigned A = I, B = (I + Offset) % N;
      if (R.nextDouble() < P) {
        // Rewire: replace B with a random non-neighbour.
        for (unsigned Tries = 0; Tries != 16; ++Tries) {
          unsigned C = static_cast<unsigned>(R.nextBelow(N));
          if (C == A || Edges.count(CanonicalEdge(A, C)))
            continue;
          B = C;
          break;
        }
      }
      if (A != B)
        Edges.insert(CanonicalEdge(A, B));
    }
  }

  for (const auto &[A, B] : Edges)
    T.connectSwitches(A, B);
  return T;
}

unsigned netupd::zooLikeSize(unsigned Index) {
  assert(Index < NumZooLike && "zoo index out of range");
  // Log-uniform over [8, 700], deterministic in the index. The Topology
  // Zoo's size distribution is heavy-tailed with a median around 20-30
  // nodes; a log-uniform spread reproduces that shape.
  Rng R(0x5eed0000u + Index);
  double LogLo = std::log(8.0), LogHi = std::log(700.0);
  double X = std::exp(LogLo + (LogHi - LogLo) * R.nextDouble());
  return static_cast<unsigned>(std::lround(X));
}

Topology netupd::buildZooLike(unsigned Index) {
  assert(Index < NumZooLike && "zoo index out of range");
  unsigned N = zooLikeSize(Index);
  Rng R(0xb10b0000u + Index);

  Topology T;
  for (unsigned I = 0; I != N; ++I)
    T.addSwitch(format("sw%u", I));

  std::set<std::pair<unsigned, unsigned>> Edges;
  auto CanonicalEdge = [](unsigned A, unsigned B) {
    return A < B ? std::make_pair(A, B) : std::make_pair(B, A);
  };

  // Connected ring backbone plus random chords: mean degree ~2.7, matching
  // the sparse WAN graphs of the Zoo.
  for (unsigned I = 0; I != N; ++I)
    Edges.insert(CanonicalEdge(I, (I + 1) % N));
  unsigned NumChords = std::max<unsigned>(1, static_cast<unsigned>(N * 0.35));
  for (unsigned C = 0; C != NumChords; ++C) {
    unsigned A = static_cast<unsigned>(R.nextBelow(N));
    unsigned B = static_cast<unsigned>(R.nextBelow(N));
    if (A == B)
      continue;
    Edges.insert(CanonicalEdge(A, B));
  }

  for (const auto &[A, B] : Edges)
    T.connectSwitches(A, B);
  return T;
}
