//===- topo/Fig1.cpp - The paper's Figure 1 example network ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "topo/Fig1.h"

#include "support/Strings.h"

using namespace netupd;

Fig1Network netupd::buildFig1() {
  Fig1Network N;
  Topology &T = N.Topo;

  N.C1 = T.addSwitch("C1");
  N.C2 = T.addSwitch("C2");
  for (unsigned I = 0; I != 4; ++I)
    N.A[I] = T.addSwitch(format("A%u", I + 1));
  for (unsigned I = 0; I != 4; ++I)
    N.T[I] = T.addSwitch(format("T%u", I + 1));
  for (unsigned I = 0; I != 4; ++I)
    N.H[I] = T.addHost(format("H%u", I + 1));

  // Pods: T1,T2 hang off A1,A2; T3,T4 hang off A3,A4. Every aggregation
  // switch reaches both cores.
  for (unsigned I = 0; I != 2; ++I)
    for (unsigned J = 0; J != 2; ++J)
      T.connectSwitches(N.T[I], N.A[J]);
  for (unsigned I = 2; I != 4; ++I)
    for (unsigned J = 2; J != 4; ++J)
      T.connectSwitches(N.T[I], N.A[J]);
  for (unsigned J = 0; J != 4; ++J) {
    T.connectSwitches(N.A[J], N.C1);
    T.connectSwitches(N.A[J], N.C2);
  }
  for (unsigned I = 0; I != 4; ++I)
    N.HostPort[I] = T.attachHost(N.H[I], N.T[I]);

  N.FlowH1H3.Hdr = makeHeader(/*Src=*/1, /*Dst=*/3);
  N.FlowH1H3.Name = "h1->h3";

  N.Red = Config(T.numSwitches());
  std::vector<SwitchId> RedPath = {N.T[0], N.A[0], N.C1, N.A[2], N.T[2]};
  installPath(T, N.Red, N.FlowH1H3, RedPath, N.H[2]);

  // Green and Blue are obtained by *modifying* the red configuration, as
  // an operator would: stale rules on bypassed switches stay installed
  // (the paper updates only A1 and C2 for red -> green, and A2, A4, T1,
  // C1 for red -> blue).
  N.Green = N.Red;
  std::vector<SwitchId> GreenPath = {N.T[0], N.A[0], N.C2, N.A[2], N.T[2]};
  installPath(T, N.Green, N.FlowH1H3, GreenPath, N.H[2]);

  N.Blue = N.Red;
  std::vector<SwitchId> BluePath = {N.T[0], N.A[1], N.C1, N.A[3], N.T[2]};
  installPath(T, N.Blue, N.FlowH1H3, BluePath, N.H[2]);
  return N;
}
