//===- topo/Scenario.cpp - Update scenarios --------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "topo/Scenario.h"

#include "support/Strings.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <queue>

using namespace netupd;

std::vector<TrafficClass> Scenario::classes() const {
  std::vector<TrafficClass> Out;
  Out.reserve(Flows.size());
  for (const FlowSpec &F : Flows)
    Out.push_back(F.Class);
  return Out;
}

Formula Scenario::buildProperty(FormulaFactory &FF) const {
  std::vector<Formula> Parts;
  for (const FlowSpec &F : Flows) {
    // With several flows in one network, scope each property to its own
    // traffic class (see ltl/Properties.h).
    Formula Guard = Flows.size() > 1 ? classGuard(FF, F.Class) : nullptr;
    switch (Kind) {
    case PropertyKind::Reachability:
      Parts.push_back(
          reachabilityProperty(FF, F.SrcPort, F.DstPort, Guard));
      break;
    case PropertyKind::Waypoint:
      assert(!F.Waypoints.empty() && "waypoint flow without a waypoint");
      Parts.push_back(waypointProperty(
          FF, F.SrcPort, Prop::onSwitch(F.Waypoints[0]), F.DstPort, Guard));
      break;
    case PropertyKind::ServiceChain: {
      std::vector<Prop> Ways;
      for (SwitchId W : F.Waypoints)
        Ways.push_back(Prop::onSwitch(W));
      Parts.push_back(
          serviceChainProperty(FF, F.SrcPort, Ways, F.DstPort, Guard));
      break;
    }
    }
  }
  return FF.conjAll(Parts);
}

unsigned netupd::numUpdatingSwitches(const Scenario &S) {
  return static_cast<unsigned>(diffSwitches(S.Initial, S.Final).size());
}

namespace {

/// Switch-level adjacency extracted from the (bidirectional) links.
std::vector<std::vector<SwitchId>> switchAdjacency(const Topology &T) {
  std::vector<std::vector<SwitchId>> Adj(T.numSwitches());
  for (const Link &L : T.links())
    if (!L.From.isHost() && !L.To.isHost())
      Adj[L.From.Switch].push_back(L.To.Switch);
  for (auto &Neighbours : Adj) {
    std::sort(Neighbours.begin(), Neighbours.end());
    Neighbours.erase(std::unique(Neighbours.begin(), Neighbours.end()),
                     Neighbours.end());
  }
  return Adj;
}

using Adjacency = std::vector<std::vector<SwitchId>>;

/// Shortest path avoiding \p Forbidden; empty if none exists.
std::vector<SwitchId> bfsPath(const Adjacency &Adj, SwitchId Src,
                              SwitchId Dst,
                              const std::vector<uint8_t> &Forbidden) {
  std::vector<int> Parent(Adj.size(), -1);
  std::queue<SwitchId> Queue;
  Queue.push(Src);
  Parent[Src] = static_cast<int>(Src);
  while (!Queue.empty()) {
    SwitchId Cur = Queue.front();
    Queue.pop();
    if (Cur == Dst)
      break;
    for (SwitchId Next : Adj[Cur]) {
      if (Parent[Next] >= 0 || Forbidden[Next])
        continue;
      Parent[Next] = static_cast<int>(Cur);
      Queue.push(Next);
    }
  }
  if (Parent[Dst] < 0)
    return {};
  std::vector<SwitchId> Path;
  for (SwitchId Cur = Dst;; Cur = static_cast<SwitchId>(Parent[Cur])) {
    Path.push_back(Cur);
    if (Cur == Src)
      break;
  }
  std::reverse(Path.begin(), Path.end());
  return Path;
}

/// Randomized DFS path from Src to Dst avoiding \p Forbidden; meanders, so
/// it tends to be long — this drives the "large diamond" runs of Fig. 8.
std::vector<SwitchId> randomWalkPath(const Adjacency &Adj, SwitchId Src,
                                     SwitchId Dst,
                                     const std::vector<uint8_t> &Forbidden,
                                     Rng &R) {
  std::vector<uint8_t> Visited(Adj.size(), 0);
  std::vector<SwitchId> Path;
  bool Found = false;

  std::function<void(SwitchId)> Walk = [&](SwitchId Cur) {
    if (Found)
      return;
    Visited[Cur] = 1;
    Path.push_back(Cur);
    if (Cur == Dst) {
      Found = true;
      return;
    }
    std::vector<SwitchId> Neighbours = Adj[Cur];
    R.shuffle(Neighbours);
    for (SwitchId Next : Neighbours) {
      if (Visited[Next] || Forbidden[Next])
        continue;
      Walk(Next);
      if (Found)
        return;
    }
    Path.pop_back();
  };

  Walk(Src);
  return Found ? Path : std::vector<SwitchId>();
}

/// BFS distances from \p Src over the whole graph.
std::vector<int> bfsDistances(const Adjacency &Adj, SwitchId Src) {
  std::vector<int> Dist(Adj.size(), -1);
  std::queue<SwitchId> Queue;
  Dist[Src] = 0;
  Queue.push(Src);
  while (!Queue.empty()) {
    SwitchId Cur = Queue.front();
    Queue.pop();
    for (SwitchId Next : Adj[Cur])
      if (Dist[Next] < 0) {
        Dist[Next] = Dist[Cur] + 1;
        Queue.push(Next);
      }
  }
  return Dist;
}

/// A diamond skeleton: common prefix (Src..Joint), two node-disjoint
/// branches (Joint..Dst), each with at least one interior switch.
struct Diamond {
  std::vector<SwitchId> Prefix;  // Src .. Joint inclusive.
  std::vector<SwitchId> Branch1; // Joint .. Dst inclusive.
  std::vector<SwitchId> Branch2; // Joint .. Dst inclusive.

  SwitchId src() const { return Prefix.front(); }
  SwitchId joint() const { return Prefix.back(); }
  SwitchId dst() const { return Branch1.back(); }

  std::vector<SwitchId> initialPath() const {
    std::vector<SwitchId> P = Prefix;
    P.insert(P.end(), Branch1.begin() + 1, Branch1.end());
    return P;
  }
  std::vector<SwitchId> finalPath() const {
    std::vector<SwitchId> P = Prefix;
    P.insert(P.end(), Branch2.begin() + 1, Branch2.end());
    return P;
  }
};

/// Tries to carve one diamond out of the graph; avoids switches marked in
/// \p Used so multiple flows get node-disjoint diamonds.
std::optional<Diamond> findDiamond(const Adjacency &Adj, Rng &R,
                                   bool LongPaths, unsigned MaxTries,
                                   const std::vector<uint8_t> &Used) {
  unsigned N = static_cast<unsigned>(Adj.size());
  for (unsigned Try = 0; Try != MaxTries; ++Try) {
    SwitchId Src = static_cast<SwitchId>(R.nextBelow(N));
    if (Used[Src])
      continue;

    // Pick a destination reasonably far away (>= 3 hops when possible).
    std::vector<int> Dist = bfsDistances(Adj, Src);
    std::vector<SwitchId> Candidates;
    for (SwitchId S = 0; S != N; ++S)
      if (!Used[S] && Dist[S] >= 3)
        Candidates.push_back(S);
    if (Candidates.empty())
      continue;
    SwitchId Dst = Candidates[R.nextBelow(Candidates.size())];

    std::vector<uint8_t> Forbidden = Used;
    std::vector<SwitchId> PathA =
        LongPaths ? randomWalkPath(Adj, Src, Dst, Forbidden, R)
                  : bfsPath(Adj, Src, Dst, Forbidden);
    // Need room for a prefix (>= 1 edge is optional) and a branch with an
    // interior node: at least 4 switches overall.
    if (PathA.size() < 4)
      continue;

    // The joint sits about a third of the way in; the branch keeps >= 2
    // edges (>= 1 interior switch).
    size_t JIdx = std::clamp<size_t>(PathA.size() / 3, 1, PathA.size() - 3);

    Diamond D;
    D.Prefix.assign(PathA.begin(), PathA.begin() + JIdx + 1);
    D.Branch1.assign(PathA.begin() + JIdx, PathA.end());

    // Forbid everything on path A except the joint and the destination, so
    // branch 2 is node-disjoint from branch 1 and from the prefix.
    for (SwitchId S : PathA)
      Forbidden[S] = 1;
    Forbidden[D.joint()] = 0;
    Forbidden[Dst] = 0;

    D.Branch2 = LongPaths
                    ? randomWalkPath(Adj, D.joint(), Dst, Forbidden, R)
                    : bfsPath(Adj, D.joint(), Dst, Forbidden);
    if (D.Branch2.size() < 3)
      continue; // No disjoint alternative with an interior switch.
    return D;
  }
  return std::nullopt;
}

/// Marks every switch of \p D as used.
void markUsed(const Diamond &D, std::vector<uint8_t> &Used) {
  for (SwitchId S : D.Prefix)
    Used[S] = 1;
  for (SwitchId S : D.Branch1)
    Used[S] = 1;
  for (SwitchId S : D.Branch2)
    Used[S] = 1;
}

std::vector<SwitchId> reversed(std::vector<SwitchId> P) {
  std::reverse(P.begin(), P.end());
  return P;
}

} // namespace

std::optional<Scenario>
netupd::makeDiamondScenario(const Topology &Base, Rng &R, PropertyKind Kind,
                            const DiamondOptions &Opts) {
  Adjacency Adj = switchAdjacency(Base);
  std::vector<uint8_t> Used(Base.numSwitches(), 0);

  Scenario S;
  S.Topo = Base;
  S.Kind = Kind;
  S.Initial = Config(Base.numSwitches());
  S.Final = Config(Base.numSwitches());

  for (unsigned FlowIdx = 0; FlowIdx != Opts.NumFlows; ++FlowIdx) {
    std::optional<Diamond> D =
        findDiamond(Adj, R, Opts.LongPaths, Opts.MaxTries, Used);
    if (!D)
      return std::nullopt;
    if (Opts.DisjointFlows)
      markUsed(*D, Used);

    FlowSpec Flow;
    Flow.Class.Hdr = makeHeader(2 * FlowIdx + 1, 2 * FlowIdx + 2);
    Flow.Class.Name = format("f%u", FlowIdx);
    Flow.SrcHost = S.Topo.addHost(format("hS%u", FlowIdx));
    Flow.DstHost = S.Topo.addHost(format("hD%u", FlowIdx));
    Flow.SrcPort = S.Topo.attachHost(Flow.SrcHost, D->src());
    Flow.DstPort = S.Topo.attachHost(Flow.DstHost, D->dst());
    Flow.InitialPath = D->initialPath();
    Flow.FinalPath = D->finalPath();

    // Waypoints come from the prefix (traversed by every configuration):
    // the joint for Waypoint, up to three prefix switches for chains.
    if (Kind == PropertyKind::Waypoint) {
      Flow.Waypoints.push_back(D->joint());
    } else if (Kind == PropertyKind::ServiceChain) {
      if (D->Prefix.size() >= 3)
        Flow.Waypoints.push_back(D->Prefix[D->Prefix.size() / 2]);
      Flow.Waypoints.push_back(D->joint());
    }

    installPath(S.Topo, S.Initial, Flow.Class, Flow.InitialPath,
                Flow.DstHost);
    installPath(S.Topo, S.Final, Flow.Class, Flow.FinalPath, Flow.DstHost);
    S.Flows.push_back(std::move(Flow));
  }
  return S;
}

std::optional<Scenario>
netupd::makeDoubleDiamondScenario(const Topology &Base, Rng &R,
                                  const DiamondOptions &Opts,
                                  PropertyKind Kind) {
  Adjacency Adj = switchAdjacency(Base);
  std::vector<uint8_t> Used(Base.numSwitches(), 0);
  std::optional<Diamond> D =
      findDiamond(Adj, R, Opts.LongPaths, Opts.MaxTries, Used);
  if (!D)
    return std::nullopt;

  Scenario S;
  S.Topo = Base;
  S.Kind = Kind;
  S.Initial = Config(Base.numSwitches());
  S.Final = Config(Base.numSwitches());

  HostId HS = S.Topo.addHost("hS");
  HostId HD = S.Topo.addHost("hD");
  PortId PS = S.Topo.attachHost(HS, D->src());
  PortId PD = S.Topo.attachHost(HD, D->dst());

  // Forward flow: branch 1 initially, branch 2 finally.
  FlowSpec Fwd;
  Fwd.Class.Hdr = makeHeader(1, 2);
  Fwd.Class.Name = "fwd";
  Fwd.SrcHost = HS;
  Fwd.DstHost = HD;
  Fwd.SrcPort = PS;
  Fwd.DstPort = PD;
  Fwd.InitialPath = D->initialPath();
  Fwd.FinalPath = D->finalPath();

  // Reverse flow: branch 2 initially, branch 1 finally — crossed with the
  // forward flow, which creates the circular ordering dependency that
  // makes switch-granularity updates impossible (Fig. 8(h)).
  FlowSpec Rev;
  Rev.Class.Hdr = makeHeader(3, 4);
  Rev.Class.Name = "rev";
  Rev.SrcHost = HD;
  Rev.DstHost = HS;
  Rev.SrcPort = PD;
  Rev.DstPort = PS;
  {
    std::vector<SwitchId> RevPrefix = reversed(D->Prefix); // Joint .. Src.
    Rev.InitialPath = reversed(D->Branch2);                // Dst .. Joint.
    Rev.InitialPath.insert(Rev.InitialPath.end(), RevPrefix.begin() + 1,
                           RevPrefix.end());
    Rev.FinalPath = reversed(D->Branch1);
    Rev.FinalPath.insert(Rev.FinalPath.end(), RevPrefix.begin() + 1,
                         RevPrefix.end());
  }

  // Waypoints for the non-reachability kinds: the joint (and a prefix
  // switch for chains) lies on every path of both flows, in the order
  // each flow traverses it.
  if (Kind == PropertyKind::Waypoint) {
    Fwd.Waypoints = {D->joint()};
    Rev.Waypoints = {D->joint()};
  } else if (Kind == PropertyKind::ServiceChain) {
    if (D->Prefix.size() >= 3) {
      SwitchId Mid = D->Prefix[D->Prefix.size() / 2];
      Fwd.Waypoints = {Mid, D->joint()}; // Src-side first.
      Rev.Waypoints = {D->joint(), Mid}; // Reverse traversal order.
    } else {
      Fwd.Waypoints = {D->joint()};
      Rev.Waypoints = {D->joint()};
    }
  }

  installPath(S.Topo, S.Initial, Fwd.Class, Fwd.InitialPath, Fwd.DstHost);
  installPath(S.Topo, S.Final, Fwd.Class, Fwd.FinalPath, Fwd.DstHost);
  installPath(S.Topo, S.Initial, Rev.Class, Rev.InitialPath, Rev.DstHost);
  installPath(S.Topo, S.Final, Rev.Class, Rev.FinalPath, Rev.DstHost);

  S.Flows.push_back(std::move(Fwd));
  S.Flows.push_back(std::move(Rev));
  return S;
}

std::optional<Scenario>
netupd::makeDiamondScenarioRetrying(const Topology &Base, Rng &R,
                                    PropertyKind Kind,
                                    const DiamondOptions &Opts,
                                    unsigned Attempts) {
  for (unsigned A = 0; A != Attempts; ++A) {
    Rng Attempt = R.fork();
    if (std::optional<Scenario> S =
            makeDiamondScenario(Base, Attempt, Kind, Opts))
      return S;
  }
  return std::nullopt;
}

std::optional<Scenario> netupd::makeDoubleDiamondScenarioRetrying(
    const Topology &Base, Rng &R, const DiamondOptions &Opts,
    PropertyKind Kind, unsigned Attempts) {
  for (unsigned A = 0; A != Attempts; ++A) {
    Rng Attempt = R.fork();
    if (std::optional<Scenario> S =
            makeDoubleDiamondScenario(Base, Attempt, Opts, Kind))
      return S;
  }
  return std::nullopt;
}

Digest netupd::digestOf(const Scenario &S) {
  DigestBuilder B;
  B.addDigest(digestOf(S.Topo));
  B.addDigest(digestOf(S.Initial));
  B.addDigest(digestOf(S.Final));
  B.addU64(static_cast<uint64_t>(S.Kind));
  B.addU64(S.Flows.size());
  for (const FlowSpec &F : S.Flows) {
    B.addDigest(digestOf(F.Class.Hdr));
    B.addU32(F.SrcHost);
    B.addU32(F.DstHost);
    B.addU32(F.SrcPort);
    B.addU32(F.DstPort);
    B.addU64(F.Waypoints.size());
    for (SwitchId W : F.Waypoints)
      B.addU32(W);
  }
  return B.finish();
}
