//===- topo/Fig1.h - The paper's Figure 1 example network ------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The running example of §2: a small two-pod datacenter with core
/// switches C1/C2, aggregation switches A1..A4, top-of-rack switches
/// T1..T4, and hosts H1..H4, plus the three configurations discussed in
/// the paper for the H1 -> H3 flow:
///
///   red   : T1 - A1 - C1 - A3 - T3   (initial)
///   green : T1 - A1 - C2 - A3 - T3   (shift away from C1)
///   blue  : T1 - A2 - C1 - A4 - T3   (shift to the other aggregation pair)
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_TOPO_FIG1_H
#define NETUPD_TOPO_FIG1_H

#include "net/Config.h"

namespace netupd {

/// The Figure 1 network, its interesting switches/hosts, and the three
/// path configurations.
struct Fig1Network {
  Topology Topo;
  SwitchId C1, C2;
  SwitchId A[4]; // A1..A4 at indices 0..3.
  SwitchId T[4]; // T1..T4.
  HostId H[4];   // H1..H4.
  PortId HostPort[4];

  TrafficClass FlowH1H3;

  Config Red;   // Initial.
  Config Green; // Final for the ordering example.
  Config Blue;  // Final for the waypoint/wait example.

  /// Global port of H1's attachment (property source).
  PortId srcPort() const { return HostPort[0]; }
  /// Global port of H3's attachment (property destination).
  PortId dstPort() const { return HostPort[2]; }
};

/// Builds the Figure 1 network and all three configurations.
Fig1Network buildFig1();

} // namespace netupd

#endif // NETUPD_TOPO_FIG1_H
