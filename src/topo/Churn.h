//===- topo/Churn.h - Rolling-maintenance churn traces ---------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Churn traces: streams of dozens of successive update scenarios over one
/// network, the shape a controller produces during rolling maintenance.
/// The trace carves several node-disjoint diamonds out of a base topology
/// and then repeatedly reroutes a randomly chosen flow from its current
/// branch to the other one; step i's initial configuration is exactly step
/// i-1's final configuration.
///
/// Because flows flip back and forth between two branch assignments, the
/// same (initial, final) pair — and hence the same scenario digest —
/// recurs throughout a long trace. That is deliberate: churn traces are
/// how the engine's result cache, incremental digests and cross-job
/// constraint learning get exercised the way a controller would exercise
/// them, rather than by one-shot synthetic jobs.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_TOPO_CHURN_H
#define NETUPD_TOPO_CHURN_H

#include "topo/Scenario.h"

#include <optional>
#include <vector>

namespace netupd {

/// Options for makeChurnTrace.
struct ChurnOptions {
  /// Number of node-disjoint diamonds (flows) carved out of the base
  /// topology. Each step reroutes exactly one of them.
  unsigned NumFlows = 2;
  /// Number of successive update scenarios in the trace.
  unsigned Steps = 24;
  /// Property family asserted for every flow at every step.
  PropertyKind Kind = PropertyKind::Reachability;
  /// Knobs forwarded to the underlying diamond generator (NumFlows is
  /// overridden by ChurnOptions::NumFlows).
  DiamondOptions Diamond;
};

/// A stream of successive update scenarios over one shared topology.
struct ChurnTrace {
  /// The scenarios, in controller order. For every i > 0,
  /// Steps[i].Initial == Steps[i-1].Final (same rule tables), and all
  /// steps share one topology and flow set.
  std::vector<Scenario> Steps;
};

/// Builds a churn trace over (a copy of) \p Base, or std::nullopt if the
/// topology cannot fit ChurnOptions::NumFlows disjoint diamonds.
/// Deterministic in (\p Base, \p R's state, \p Opts). Every step is a
/// feasible single-flow reroute across a diamond, so a correct
/// synthesizer reports Success on each one.
std::optional<ChurnTrace> makeChurnTrace(const Topology &Base, Rng &R,
                                         const ChurnOptions &Opts = {});

} // namespace netupd

#endif // NETUPD_TOPO_CHURN_H
