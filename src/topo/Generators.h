//===- topo/Generators.h - Topology generators -----------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generators for the three topology families of §6:
///
///  - FatTree(k)     [Al-Fares et al., SIGCOMM 2008]: k pods of k/2 edge
///                   and k/2 aggregation switches plus (k/2)^2 cores;
///  - Small-World    [Newman/Strogatz/Watts 2001]: a Watts-Strogatz ring
///                   lattice with random rewiring;
///  - Zoo-like WANs  : stand-ins for the 261 Topology Zoo networks (the
///                   GML dataset is not redistributable here); ring-plus-
///                   chord graphs whose size and mean-degree distribution
///                   matches published Zoo statistics. See DESIGN.md §2.
///
/// All generators emit switch-level topologies (bidirectional switch-to-
/// switch links); hosts are attached later by the scenario builders.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_TOPO_GENERATORS_H
#define NETUPD_TOPO_GENERATORS_H

#include "net/Topology.h"
#include "support/Random.h"

namespace netupd {

/// Builds a k-ary fat tree; \p K must be even and >= 2. The switch count
/// is 5k^2/4 (k^2/2 edge + k^2/2 aggregation + k^2/4 core).
Topology buildFatTree(unsigned K);

/// Builds a two-level leaf-spine Clos fabric: \p Leaves leaf switches,
/// each connected to every one of the \p Spines spine switches (full
/// bipartite core). The workhorse of modern datacenter pods; at
/// (Leaves=480, Spines=32) this is a 512-switch fabric.
Topology buildClos(unsigned Leaves, unsigned Spines);

/// Parameters for the hierarchical WAN generator.
struct WanParams {
  /// Number of metro regions (each a ring of PoPs with chords).
  unsigned Regions = 8;
  /// Mean PoPs per region; actual sizes are drawn in
  /// [MeanRegionSize/2, 3*MeanRegionSize/2].
  unsigned MeanRegionSize = 16;
  /// Extra intra-region chords as a fraction of the region size.
  double ChordFraction = 0.3;
  /// Inter-region backbone links per region beyond the ring that keeps
  /// the backbone connected (long-haul redundancy).
  unsigned ExtraBackboneLinks = 1;
};

/// Builds a hierarchical WAN: \p P.Regions ring-with-chords metro
/// regions whose gateway PoPs are joined by a connected backbone ring
/// plus random long-haul links — the Zoo's continental-carrier shape,
/// parameterized up to thousands of switches. Deterministic in (\p P,
/// \p R's state).
Topology buildWan(const WanParams &P, Rng &R);

/// Builds a Watts-Strogatz small-world graph over \p N switches: each node
/// is wired to its \p K nearest ring neighbours (K even), then each edge is
/// rewired to a random endpoint with probability \p P. The graph stays
/// connected (the ring backbone is preserved).
Topology buildSmallWorld(unsigned N, unsigned K, double P, Rng &R);

/// Number of Zoo-like topologies (matches the 261 networks of the
/// Topology Zoo dataset).
inline constexpr unsigned NumZooLike = 261;

/// Builds the \p Index-th Zoo-like WAN (0 <= Index < NumZooLike),
/// deterministically: a connected ring of n switches plus ~0.35n random
/// chords, with n drawn from a log-uniform spread over [8, 700].
Topology buildZooLike(unsigned Index);

/// Returns the number of switches the \p Index-th Zoo-like WAN will have
/// without building it (used by benches to sort by size).
unsigned zooLikeSize(unsigned Index);

} // namespace netupd

#endif // NETUPD_TOPO_GENERATORS_H
