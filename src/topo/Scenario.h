//===- topo/Scenario.h - Update scenarios ----------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Update scenarios in the style of the paper's evaluation (§6): pairs of
/// nodes connected by disjoint initial/final paths ("diamonds"), with one
/// of the three property families asserted per pair, and the adversarial
/// "double diamond" construction of Fig. 8(h) where the second flow routes
/// in the opposite direction and no switch-granularity order exists.
///
/// A diamond here is: source switch s, a common prefix to a joint switch
/// j, then two node-disjoint branches from j to the destination d. The
/// initial configuration routes the flow over branch 1, the final one over
/// branch 2. Waypoint properties use the joint (on both branches);
/// service chains use prefix switches, which every configuration
/// traverses.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_TOPO_SCENARIO_H
#define NETUPD_TOPO_SCENARIO_H

#include "ltl/Properties.h"
#include "net/Config.h"
#include "support/Random.h"

#include <optional>
#include <vector>

namespace netupd {

/// Which of the three §6 property families a scenario asserts.
enum class PropertyKind { Reachability, Waypoint, ServiceChain };

/// One flow (one "diamond") of a scenario.
struct FlowSpec {
  TrafficClass Class;
  HostId SrcHost = 0, DstHost = 0;
  PortId SrcPort = InvalidPort, DstPort = InvalidPort;
  /// Waypoint switches (1 for Waypoint, several for ServiceChain, none
  /// for Reachability), in required visiting order.
  std::vector<SwitchId> Waypoints;
  /// The initial and final switch paths, for diagnostics and baselines.
  std::vector<SwitchId> InitialPath, FinalPath;
};

/// A complete synthesis problem instance.
struct Scenario {
  Topology Topo;
  Config Initial, Final;
  std::vector<FlowSpec> Flows;
  PropertyKind Kind = PropertyKind::Reachability;

  /// The traffic classes, one per flow, in flow order.
  std::vector<TrafficClass> classes() const;

  /// The conjunction of the per-flow properties. Guards with the traffic
  /// class whenever there is more than one flow (see ltl/Properties.h).
  Formula buildProperty(FormulaFactory &FF) const;
};

/// Options for the diamond generators.
struct DiamondOptions {
  /// Number of independent (source, destination) pairs.
  unsigned NumFlows = 1;
  /// Grow branches with a randomized walk instead of shortest paths; used
  /// by the Fig. 8(g) scalability runs, where the largest diamonds update
  /// over a thousand switches.
  bool LongPaths = false;
  /// Keep different flows' diamonds node-disjoint. Turning this off packs
  /// many flows into one network (rules pile up on shared switches), the
  /// regime of the rule-granularity experiments (Fig. 7(d-f)).
  bool DisjointFlows = true;
  /// Retry budget for finding disjoint branches.
  unsigned MaxTries = 64;
};

/// Builds a diamond scenario over (a copy of) \p Base, or std::nullopt if
/// no suitable diamond exists within the retry budget.
std::optional<Scenario> makeDiamondScenario(const Topology &Base, Rng &R,
                                            PropertyKind Kind,
                                            const DiamondOptions &Opts = {});

/// Builds the Fig. 8(h) adversarial instance: one diamond carrying two
/// flows in opposite directions, with initial/final branch assignments
/// crossed so that every switch-granularity order breaks the property for
/// one of the flows, while rule-granularity orders exist. \p Kind selects
/// the asserted property family; waypoints (joint and prefix switches)
/// lie on every path of both flows.
std::optional<Scenario>
makeDoubleDiamondScenario(const Topology &Base, Rng &R,
                          const DiamondOptions &Opts = {},
                          PropertyKind Kind = PropertyKind::Reachability);

/// Bounded-retry wrapper around makeDiamondScenario: re-rolls with up to
/// \p Attempts independent forks of \p R, so an unlucky internal draw
/// (e.g. a random walk that fails disjointness MaxTries times) does not
/// strand a bench or fuzz run. Returns std::nullopt only when every
/// attempt fails — in practice, when \p Base has no diamond at all.
std::optional<Scenario>
makeDiamondScenarioRetrying(const Topology &Base, Rng &R, PropertyKind Kind,
                            const DiamondOptions &Opts = {},
                            unsigned Attempts = 16);

/// Bounded-retry wrapper around makeDoubleDiamondScenario; same contract
/// as makeDiamondScenarioRetrying.
std::optional<Scenario> makeDoubleDiamondScenarioRetrying(
    const Topology &Base, Rng &R, const DiamondOptions &Opts = {},
    PropertyKind Kind = PropertyKind::Reachability, unsigned Attempts = 16);

/// Counts the switches whose tables differ between the scenario's initial
/// and final configurations — the "switches updating" measure of Fig. 8.
unsigned numUpdatingSwitches(const Scenario &S);

/// Canonical digest of a whole synthesis problem: topology structure,
/// both configurations, property kind, and the semantic flow fields
/// (class headers, endpoints, waypoints). Display names and the
/// diagnostic Initial/FinalPath fields are excluded, so two jobs that
/// would run the same search share a digest — the key of the engine's
/// result cache.
Digest digestOf(const Scenario &S);

} // namespace netupd

#endif // NETUPD_TOPO_SCENARIO_H
