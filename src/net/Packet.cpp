//===- net/Packet.cpp - Packet headers and patterns ------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "net/Packet.h"

#include "support/Strings.h"

using namespace netupd;

const char *netupd::fieldName(Field F) {
  switch (F) {
  case Field::Src:
    return "src";
  case Field::Dst:
    return "dst";
  case Field::Typ:
    return "typ";
  }
  return "?";
}

std::optional<Field> netupd::fieldFromName(const std::string &Name) {
  if (Name == "src")
    return Field::Src;
  if (Name == "dst")
    return Field::Dst;
  if (Name == "typ")
    return Field::Typ;
  return std::nullopt;
}

std::string Header::str() const {
  std::vector<std::string> Parts;
  for (unsigned I = 0; I != NumFields; ++I)
    Parts.push_back(format("%s=%u", fieldName(static_cast<Field>(I)),
                           Values[I]));
  return "{" + join(Parts, ", ") + "}";
}

Header netupd::makeHeader(uint32_t Src, uint32_t Dst, uint32_t Typ) {
  Header H;
  H.set(Field::Src, Src);
  H.set(Field::Dst, Dst);
  H.set(Field::Typ, Typ);
  return H;
}

std::string Pattern::str() const {
  std::vector<std::string> Parts;
  if (InPort)
    Parts.push_back(format("port=%u", *InPort));
  for (unsigned I = 0; I != NumFields; ++I)
    if (Values[I])
      Parts.push_back(format("%s=%u", fieldName(static_cast<Field>(I)),
                             *Values[I]));
  if (Parts.empty())
    return "{*}";
  return "{" + join(Parts, ", ") + "}";
}

Digest netupd::digestOf(const Header &H) {
  DigestBuilder B;
  for (uint32_t V : H.Values)
    B.addU32(V);
  return B.finish();
}

Digest netupd::digestOf(const Pattern &P) {
  DigestBuilder B;
  B.addBool(P.InPort.has_value());
  B.addU32(P.InPort ? *P.InPort : 0);
  for (const std::optional<uint32_t> &V : P.Values) {
    B.addBool(V.has_value());
    B.addU32(V ? *V : 0);
  }
  return B.finish();
}
