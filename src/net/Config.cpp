//===- net/Config.cpp - Network configurations -----------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "net/Config.h"

using namespace netupd;

size_t Config::totalRules() const {
  size_t N = 0;
  for (const Table &T : Tables)
    N += T.size();
  return N;
}

std::vector<SwitchId> netupd::diffSwitches(const Config &From,
                                           const Config &To) {
  assert(From.numSwitches() == To.numSwitches() &&
         "configurations over different topologies");
  std::vector<SwitchId> Diff;
  for (SwitchId S = 0; S != From.numSwitches(); ++S)
    if (From.table(S) != To.table(S))
      Diff.push_back(S);
  return Diff;
}

/// Finds the port of \p From whose outgoing link reaches switch \p To.
static PortId portTowardSwitch(const Topology &Topo, SwitchId From,
                               SwitchId To) {
  for (PortId P : Topo.switchPorts(From)) {
    const Location *Dst = Topo.linkFrom(From, P);
    if (Dst && !Dst->isHost() && Dst->Switch == To)
      return P;
  }
  return InvalidPort;
}

/// Finds the port of \p From whose outgoing link reaches host \p H.
static PortId portTowardHost(const Topology &Topo, SwitchId From, HostId H) {
  for (PortId P : Topo.switchPorts(From)) {
    const Location *Dst = Topo.linkFrom(From, P);
    if (Dst && Dst->isHost() && Dst->Host == H)
      return P;
  }
  return InvalidPort;
}

void netupd::installPath(const Topology &Topo, Config &Cfg,
                         const TrafficClass &Class,
                         const std::vector<SwitchId> &Path, HostId DstHost,
                         uint32_t Priority) {
  assert(!Path.empty() && "cannot install an empty path");
  for (size_t I = 0, E = Path.size(); I != E; ++I) {
    PortId Out = (I + 1 == E) ? portTowardHost(Topo, Path[I], DstHost)
                              : portTowardSwitch(Topo, Path[I], Path[I + 1]);
    assert(Out != InvalidPort && "path does not follow topology links");

    // Match on the class's destination field so unrelated classes keep
    // their own rules; one rule per (class, switch).
    Rule R;
    R.Priority = Priority;
    R.Pat = Pattern::onField(Field::Dst, Class.Hdr.get(Field::Dst));
    R.Pat.Values[static_cast<size_t>(Field::Src)] =
        Class.Hdr.get(Field::Src);
    R.Actions.push_back(Action::forward(Out));

    // Replace any existing rule for this class at the same priority level.
    Table &T = Cfg.table(Path[I]);
    std::vector<Rule> Kept;
    for (const Rule &Old : T.rules())
      if (!(Old.Pat == R.Pat && Old.Priority == Priority))
        Kept.push_back(Old);
    Kept.push_back(R);
    Cfg.setTable(Path[I], Table(std::move(Kept)));
  }
}

Digest netupd::configSlotDigest(SwitchId Sw, const Digest &TableDigest) {
  DigestBuilder B;
  B.addU32(Sw);
  B.addDigest(TableDigest);
  return B.finish();
}

Digest netupd::digestOf(const Config &C) {
  DigestBuilder Meta;
  Meta.addU64(C.numSwitches());
  Digest D = Meta.finish();
  for (SwitchId Sw = 0; Sw != C.numSwitches(); ++Sw)
    D ^= configSlotDigest(Sw, digestOf(C.table(Sw)));
  return D;
}
