//===- net/Topology.cpp - Switches, hosts, links ---------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "net/Topology.h"

#include "support/Strings.h"

using namespace netupd;

std::string Location::str() const {
  if (K == Kind::Host)
    return format("host(%u)", Host);
  return format("(sw %u, pt %u)", Switch, Port);
}

SwitchId Topology::addSwitch(std::string Name) {
  SwitchId Id = static_cast<SwitchId>(SwitchNames.size());
  SwitchNames.push_back(std::move(Name));
  SwitchPortIds.emplace_back();
  return Id;
}

HostId Topology::addHost(std::string Name) {
  HostId Id = static_cast<HostId>(HostNames.size());
  HostNames.push_back(std::move(Name));
  return Id;
}

PortId Topology::addPort(SwitchId S) {
  assert(S < SwitchPortIds.size() && "bad switch id");
  PortId P = static_cast<PortId>(PortOwner.size());
  PortOwner.push_back(S);
  SwitchPortIds[S].push_back(P);
  return P;
}

void Topology::addLink(Location From, Location To) {
  Links.push_back(Link{From, To});
}

std::pair<PortId, PortId> Topology::connectSwitches(SwitchId A, SwitchId B) {
  PortId PA = addPort(A);
  PortId PB = addPort(B);
  addLink(Location::switchPort(A, PA), Location::switchPort(B, PB));
  addLink(Location::switchPort(B, PB), Location::switchPort(A, PA));
  return {PA, PB};
}

PortId Topology::attachHost(HostId H, SwitchId S) {
  PortId P = addPort(S);
  addLink(Location::host(H), Location::switchPort(S, P));
  addLink(Location::switchPort(S, P), Location::host(H));
  return P;
}

const Location *Topology::linkFrom(SwitchId S, PortId P) const {
  for (const Link &L : Links)
    if (!L.From.isHost() && L.From.Switch == S && L.From.Port == P)
      return &L.To;
  return nullptr;
}

std::vector<Location> Topology::linksInto(SwitchId S, PortId P) const {
  std::vector<Location> Sources;
  for (const Link &L : Links)
    if (!L.To.isHost() && L.To.Switch == S && L.To.Port == P)
      Sources.push_back(L.From);
  return Sources;
}

std::vector<Location> Topology::ingressLocations() const {
  std::vector<Location> Ingresses;
  for (const Link &L : Links)
    if (L.From.isHost() && !L.To.isHost())
      Ingresses.push_back(L.To);
  return Ingresses;
}

PortId Topology::hostAttachment(HostId H) const {
  for (const Link &L : Links)
    if (L.From.isHost() && L.From.Host == H && !L.To.isHost())
      return L.To.Port;
  return InvalidPort;
}

std::vector<Location> Topology::egressLocations() const {
  std::vector<Location> Egresses;
  for (const Link &L : Links)
    if (!L.From.isHost() && L.To.isHost())
      Egresses.push_back(L.From);
  return Egresses;
}

Digest netupd::digestOf(const Topology &T) {
  DigestBuilder B;
  B.addU64(T.numSwitches());
  B.addU64(T.numHosts());
  B.addU64(T.numPorts());
  for (PortId P = 0; P != T.numPorts(); ++P)
    B.addU32(T.portOwner(P));
  B.addU64(T.numLinks());
  for (const Link &L : T.links())
    for (const Location &Loc : {L.From, L.To}) {
      B.addBool(Loc.isHost());
      if (Loc.isHost())
        B.addU32(Loc.Host);
      else {
        B.addU32(Loc.Switch);
        B.addU32(Loc.Port);
      }
    }
  return B.finish();
}
