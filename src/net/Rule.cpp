//===- net/Rule.cpp - Forwarding rules and tables --------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "net/Rule.h"

#include "support/Strings.h"

#include <cassert>

using namespace netupd;

std::string Action::str() const {
  if (K == Kind::Forward)
    return format("fwd %u", OutPort);
  return format("%s := %u", fieldName(F), Value);
}

std::string Rule::str() const {
  std::vector<std::string> ActStrs;
  for (const Action &A : Actions)
    ActStrs.push_back(A.str());
  return format("[pri=%u] %s -> (%s)", Priority, Pat.str().c_str(),
                join(ActStrs, "; ").c_str());
}

void Table::removeRule(size_t Idx) {
  assert(Idx < Rules.size() && "rule index out of range");
  Rules.erase(Rules.begin() + static_cast<ptrdiff_t>(Idx));
}

int Table::matchIndex(const Header &Hdr, PortId InPort) const {
  int Best = -1;
  for (size_t I = 0, E = Rules.size(); I != E; ++I) {
    if (!Rules[I].Pat.matches(Hdr, InPort))
      continue;
    if (Best < 0 || Rules[I].Priority > Rules[static_cast<size_t>(Best)].Priority)
      Best = static_cast<int>(I);
  }
  return Best;
}

std::vector<Output> Table::apply(const Header &Hdr, PortId InPort) const {
  int Idx = matchIndex(Hdr, InPort);
  if (Idx < 0)
    return {}; // No matching rule: drop.

  std::vector<Output> Outs;
  Header Cur = Hdr;
  for (const Action &A : Rules[static_cast<size_t>(Idx)].Actions) {
    if (A.K == Action::Kind::SetField) {
      Cur.set(A.F, A.Value);
      continue;
    }
    Outs.push_back(Output{Cur, A.OutPort});
  }
  return Outs;
}

std::string Table::str() const {
  std::vector<std::string> Lines;
  for (const Rule &R : Rules)
    Lines.push_back("  " + R.str());
  return "table {\n" + join(Lines, "\n") + "\n}";
}

Digest netupd::digestOf(const Action &A) {
  DigestBuilder B;
  B.addU64(static_cast<uint64_t>(A.K));
  if (A.K == Action::Kind::Forward) {
    B.addU32(A.OutPort);
  } else {
    B.addU64(static_cast<uint64_t>(A.F));
    B.addU32(A.Value);
  }
  return B.finish();
}

Digest netupd::digestOf(const Rule &R) {
  DigestBuilder B;
  B.addU32(R.Priority);
  B.addDigest(digestOf(R.Pat));
  B.addU64(R.Actions.size());
  for (const Action &A : R.Actions)
    B.addDigest(digestOf(A));
  return B.finish();
}

Digest netupd::digestOf(const Table &T) {
  DigestBuilder B;
  B.addU64(T.size());
  for (const Rule &R : T.rules())
    B.addDigest(digestOf(R));
  return B.finish();
}
