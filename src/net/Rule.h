//===- net/Rule.h - Forwarding rules and tables ----------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prioritized forwarding rules and tables (§3.1). The semantic function
/// [[tbl]] maps a (packet, port) pair to the multiset of (packet, port)
/// pairs produced by the highest-priority matching rule; packets with no
/// matching rule are dropped.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_NET_RULE_H
#define NETUPD_NET_RULE_H

#include "net/Packet.h"

#include <cstdint>
#include <string>
#include <vector>

namespace netupd {

/// A forwarding action: either send the packet out a port, or overwrite a
/// header field ("fwd pt | f := n" in §3.1).
struct Action {
  enum class Kind : uint8_t { Forward, SetField };

  Kind K = Kind::Forward;
  PortId OutPort = InvalidPort; // Forward
  Field F = Field::Src;         // SetField
  uint32_t Value = 0;           // SetField

  static Action forward(PortId Port) {
    Action A;
    A.K = Kind::Forward;
    A.OutPort = Port;
    return A;
  }

  static Action setField(Field F, uint32_t V) {
    Action A;
    A.K = Kind::SetField;
    A.F = F;
    A.Value = V;
    return A;
  }

  friend bool operator==(const Action &A, const Action &B) {
    if (A.K != B.K)
      return false;
    if (A.K == Kind::Forward)
      return A.OutPort == B.OutPort;
    return A.F == B.F && A.Value == B.Value;
  }

  std::string str() const;
};

/// A prioritized forwarding rule "{pri; pat; acts}". Higher priority wins.
struct Rule {
  uint32_t Priority = 0;
  Pattern Pat;
  std::vector<Action> Actions;

  friend bool operator==(const Rule &A, const Rule &B) {
    return A.Priority == B.Priority && A.Pat == B.Pat &&
           A.Actions == B.Actions;
  }

  std::string str() const;
};

/// An output of table application: the (possibly rewritten) header and the
/// port it is sent out of.
struct Output {
  Header Hdr;
  PortId OutPort;

  friend bool operator==(const Output &A, const Output &B) {
    return A.Hdr == B.Hdr && A.OutPort == B.OutPort;
  }
};

/// A forwarding table: a set of prioritized rules.
class Table {
public:
  Table() = default;
  explicit Table(std::vector<Rule> Rules) : Rules(std::move(Rules)) {}

  const std::vector<Rule> &rules() const { return Rules; }
  size_t size() const { return Rules.size(); }
  bool empty() const { return Rules.empty(); }

  void addRule(Rule R) { Rules.push_back(std::move(R)); }

  /// Removes the rule at index \p Idx.
  void removeRule(size_t Idx);

  /// Returns the index of the highest-priority rule matching \p Hdr on
  /// \p InPort, or -1 if the packet would be dropped. Ties are broken by
  /// lowest index, making the semantics deterministic (the paper allows any
  /// choice among equal priorities).
  int matchIndex(const Header &Hdr, PortId InPort) const;

  /// Applies [[tbl]]: runs the actions of the matching rule. The result is
  /// the multiset of output (header, port) pairs; empty means drop.
  std::vector<Output> apply(const Header &Hdr, PortId InPort) const;

  friend bool operator==(const Table &A, const Table &B) {
    return A.Rules == B.Rules;
  }
  friend bool operator!=(const Table &A, const Table &B) {
    return !(A == B);
  }

  std::string str() const;

private:
  std::vector<Rule> Rules;
};

/// Canonical content digests. A table's digest is order-sensitive: rule
/// order is semantic (equal priorities tie-break by index in
/// Table::matchIndex).
Digest digestOf(const Action &A);
Digest digestOf(const Rule &R);
Digest digestOf(const Table &T);

} // namespace netupd

#endif // NETUPD_NET_RULE_H
