//===- net/Packet.h - Packet headers and patterns --------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Packet headers and match patterns from the paper's network model (§3.1).
/// A packet is a record of header fields (source, destination, protocol
/// type); a pattern is a record of *optional* fields plus an optional
/// ingress port, matching any packet that agrees on the present fields.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_NET_PACKET_H
#define NETUPD_NET_PACKET_H

#include "support/Digest.h"

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace netupd {

/// Identifies a header field. The paper's model is parametric in the field
/// set; three fields suffice for every property and workload it evaluates.
enum class Field : uint8_t { Src = 0, Dst = 1, Typ = 2 };

/// Number of header fields in the model.
inline constexpr unsigned NumFields = 3;

/// Width of each header field in bits; used by the header-space backend to
/// encode headers as ternary bit vectors.
inline constexpr unsigned FieldBits = 8;

/// Returns the short field name used by printers ("src", "dst", "typ").
const char *fieldName(Field F);

/// Parses a field name; returns std::nullopt if \p Name is unknown.
std::optional<Field> fieldFromName(const std::string &Name);

/// A globally-unique port identifier. Every (switch, physical port) pair in
/// a topology gets its own PortId, so atomic propositions "port = n" are
/// unambiguous network-wide (§6 uses such propositions for reachability).
using PortId = uint32_t;

/// A switch identifier (index into Topology::switches()).
using SwitchId = uint32_t;

/// A host identifier (index into Topology::hosts()).
using HostId = uint32_t;

/// Sentinel for "no port".
inline constexpr PortId InvalidPort = ~PortId(0);

/// A packet header: concrete values for every field.
///
/// Epoch annotations from the operational model live on in-flight packet
/// instances (sim/Element.h), not on the header.
struct Header {
  std::array<uint32_t, NumFields> Values = {0, 0, 0};

  uint32_t get(Field F) const { return Values[static_cast<size_t>(F)]; }
  void set(Field F, uint32_t V) { Values[static_cast<size_t>(F)] = V; }

  friend bool operator==(const Header &A, const Header &B) {
    return A.Values == B.Values;
  }
  friend bool operator!=(const Header &A, const Header &B) {
    return !(A == B);
  }
  friend bool operator<(const Header &A, const Header &B) {
    return A.Values < B.Values;
  }

  /// Renders as "{src=1, dst=2, typ=0}".
  std::string str() const;
};

/// Builds a header with the given source/destination/type values.
Header makeHeader(uint32_t Src, uint32_t Dst, uint32_t Typ = 0);

/// A match pattern: optional ingress port plus optional field values
/// (the type "{pt?; f1?; ...; fk?}" from §3.1).
struct Pattern {
  std::optional<PortId> InPort;
  std::array<std::optional<uint32_t>, NumFields> Values;

  /// Returns true when \p Hdr arriving on \p Port satisfies every present
  /// component of this pattern.
  bool matches(const Header &Hdr, PortId Port) const {
    if (InPort && *InPort != Port)
      return false;
    for (size_t I = 0; I != NumFields; ++I)
      if (Values[I] && *Values[I] != Hdr.Values[I])
        return false;
    return true;
  }

  /// Returns a pattern with no constraints (matches every packet).
  static Pattern wildcard() { return Pattern(); }

  /// Returns a pattern constraining one field.
  static Pattern onField(Field F, uint32_t V) {
    Pattern P;
    P.Values[static_cast<size_t>(F)] = V;
    return P;
  }

  friend bool operator==(const Pattern &A, const Pattern &B) {
    return A.InPort == B.InPort && A.Values == B.Values;
  }

  /// Renders as "{port=3, dst=2}" (only present components).
  std::string str() const;
};

/// Canonical content digests (support/Digest.h); equal values get equal
/// digests across processes and builds.
Digest digestOf(const Header &H);
Digest digestOf(const Pattern &P);

} // namespace netupd

#endif // NETUPD_NET_PACKET_H
