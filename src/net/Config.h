//===- net/Config.h - Network configurations -------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A network configuration (Def. 4): one forwarding table per switch of a
/// fixed topology, i.e., the data plane of a static, packet-free network.
/// Synthesis transitions between two configurations of the same topology.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_NET_CONFIG_H
#define NETUPD_NET_CONFIG_H

#include "net/Rule.h"
#include "net/Topology.h"

#include <cassert>
#include <string>
#include <vector>

namespace netupd {

/// A traffic class: packets that agree on the header fields the properties
/// mention (2^AP in §3.2). The repository models a class by a
/// representative header since rules never distinguish packets within one
/// class and packet modification is not reasoned about (§3.3).
struct TrafficClass {
  Header Hdr;
  std::string Name;
};

/// One forwarding table per switch of a topology.
class Config {
public:
  Config() = default;
  explicit Config(unsigned NumSwitches) : Tables(NumSwitches) {}

  unsigned numSwitches() const { return static_cast<unsigned>(Tables.size()); }

  const Table &table(SwitchId S) const {
    assert(S < Tables.size() && "bad switch id");
    return Tables[S];
  }
  Table &table(SwitchId S) {
    assert(S < Tables.size() && "bad switch id");
    return Tables[S];
  }

  void setTable(SwitchId S, Table T) {
    assert(S < Tables.size() && "bad switch id");
    Tables[S] = std::move(T);
  }

  /// Total number of rules across all switches; x-axis of Fig. 7(d-f) and
  /// Fig. 8(i).
  size_t totalRules() const;

  friend bool operator==(const Config &A, const Config &B) {
    return A.Tables == B.Tables;
  }

private:
  std::vector<Table> Tables;
};

/// Zobrist-style slot digest: the contribution of (switch \p Sw holding a
/// table with digest \p TableDigest) to a configuration digest. A Config
/// digest is the XOR of its slot digests (plus the switch count), so
/// replacing one table is an O(|table|) digest update — the incremental
/// maintenance KripkeStructure performs under mutate/rollback.
Digest configSlotDigest(SwitchId Sw, const Digest &TableDigest);

/// Canonical digest of a whole configuration, computed from scratch.
Digest digestOf(const Config &C);

/// Returns the switches whose tables differ between \p From and \p To —
/// the switches ORDERUPDATE must update.
std::vector<SwitchId> diffSwitches(const Config &From, const Config &To);

/// Installs forwarding rules along \p Path (a sequence of switch ids) for
/// traffic class \p Class into \p Cfg: each switch forwards class packets
/// out the port toward its successor; the last switch forwards to the
/// egress port attached to the destination host.
///
/// \param Topo        the interconnect
/// \param Cfg         configuration to modify
/// \param Class       the traffic class to route
/// \param Path        switch ids from ingress to egress
/// \param DstHost     host the final switch delivers to
/// \param Priority    rule priority to install
void installPath(const Topology &Topo, Config &Cfg, const TrafficClass &Class,
                 const std::vector<SwitchId> &Path, HostId DstHost,
                 uint32_t Priority = 10);

} // namespace netupd

#endif // NETUPD_NET_CONFIG_H
