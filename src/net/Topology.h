//===- net/Topology.h - Switches, hosts, links -----------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static interconnect of the network model (§3.1): switches with
/// globally-numbered ports, hosts, and directed links between locations.
/// A location is either a host or a (switch, port) pair.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_NET_TOPOLOGY_H
#define NETUPD_NET_TOPOLOGY_H

#include "net/Packet.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace netupd {

/// A location: a host, or a (switch, port) pair.
struct Location {
  enum class Kind : uint8_t { Host, SwitchPort };

  Kind K = Kind::Host;
  HostId Host = 0;
  SwitchId Switch = 0;
  PortId Port = InvalidPort;

  static Location host(HostId H) {
    Location L;
    L.K = Kind::Host;
    L.Host = H;
    return L;
  }

  static Location switchPort(SwitchId S, PortId P) {
    Location L;
    L.K = Kind::SwitchPort;
    L.Switch = S;
    L.Port = P;
    return L;
  }

  bool isHost() const { return K == Kind::Host; }

  friend bool operator==(const Location &A, const Location &B) {
    if (A.K != B.K)
      return false;
    if (A.K == Kind::Host)
      return A.Host == B.Host;
    return A.Switch == B.Switch && A.Port == B.Port;
  }

  std::string str() const;
};

/// A directed link from one location to another ("{loc; pkts; loc'}" in the
/// model; the packet queue lives in the simulator, not here).
struct Link {
  Location From;
  Location To;
};

/// An immutable-after-construction network interconnect.
///
/// Ports are allocated by the topology and are globally unique, so an
/// atomic proposition "port = n" (see ltl/Prop.h) names exactly one
/// attachment point in the whole network.
class Topology {
public:
  /// Adds a switch; returns its id. Switch names are used by printers.
  SwitchId addSwitch(std::string Name);

  /// Adds a host; returns its id.
  HostId addHost(std::string Name);

  /// Allocates a fresh port on switch \p S; returns its global id.
  PortId addPort(SwitchId S);

  /// Adds a directed link.
  void addLink(Location From, Location To);

  /// Adds a pair of directed links between two switches, allocating one
  /// fresh port on each side. Returns the (port on A, port on B) pair.
  std::pair<PortId, PortId> connectSwitches(SwitchId A, SwitchId B);

  /// Attaches host \p H to switch \p S with a bidirectional link,
  /// allocating a fresh switch port. Returns that port.
  PortId attachHost(HostId H, SwitchId S);

  unsigned numSwitches() const {
    return static_cast<unsigned>(SwitchNames.size());
  }
  unsigned numHosts() const { return static_cast<unsigned>(HostNames.size()); }
  unsigned numPorts() const { return static_cast<unsigned>(PortOwner.size()); }
  unsigned numLinks() const { return static_cast<unsigned>(Links.size()); }

  const std::string &switchName(SwitchId S) const {
    assert(S < SwitchNames.size() && "bad switch id");
    return SwitchNames[S];
  }
  const std::string &hostName(HostId H) const {
    assert(H < HostNames.size() && "bad host id");
    return HostNames[H];
  }

  /// Returns the switch owning global port \p P.
  SwitchId portOwner(PortId P) const {
    assert(P < PortOwner.size() && "bad port id");
    return PortOwner[P];
  }

  /// Returns all ports of switch \p S.
  const std::vector<PortId> &switchPorts(SwitchId S) const {
    assert(S < SwitchPortIds.size() && "bad switch id");
    return SwitchPortIds[S];
  }

  const std::vector<Link> &links() const { return Links; }

  /// Returns the destination of the unique link leaving (switch, port), or
  /// nullptr if that port has no outgoing link.
  const Location *linkFrom(SwitchId S, PortId P) const;

  /// Returns the locations with a link into (switch \p S, port \p P):
  /// used to find which ports of a switch can receive packets.
  std::vector<Location> linksInto(SwitchId S, PortId P) const;

  /// Returns all (switch, port) pairs fed directly by a host link —
  /// the network ingresses (initial Kripke states, Def. 9).
  std::vector<Location> ingressLocations() const;

  /// Returns the switch port attached to host \p H (assumes a single
  /// attachment, which every workload in this repo satisfies), or
  /// InvalidPort if the host is detached.
  PortId hostAttachment(HostId H) const;

  /// Returns the host-facing egress ports: switch ports with a link to a
  /// host.
  std::vector<Location> egressLocations() const;

private:
  std::vector<std::string> SwitchNames;
  std::vector<std::string> HostNames;
  std::vector<PortId> PortOwner;             // global port -> switch
  std::vector<std::vector<PortId>> SwitchPortIds; // switch -> ports
  std::vector<Link> Links;
};

/// Canonical digest over the interconnect structure (switch/host/port
/// counts, port ownership, links). Display names are excluded so renamed
/// but otherwise identical topologies share a digest — the memoization
/// caches key on what the checkers can observe.
Digest digestOf(const Topology &T);

} // namespace netupd

#endif // NETUPD_NET_TOPOLOGY_H
