//===- examples/infeasible_update.cpp - Granularity matters ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Fig. 8(h)/(i) story in miniature: two flows cross the same diamond
/// in opposite directions, and the target configuration swaps their
/// branches. At switch granularity every order strands one of the flows
/// — the tool proves impossibility (SAT-based early termination, §4.2) —
/// while at rule granularity, where a switch can move one traffic class
/// at a time, a correct order exists and is found.
///
//===----------------------------------------------------------------------===//

#include "ltl/Properties.h"
#include "mc/LabelingChecker.h"
#include "support/Random.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"
#include "topo/Scenario.h"

#include <cstdio>

using namespace netupd;

int main() {
  Rng R(2026);
  Topology Base = buildSmallWorld(24, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  if (!S) {
    std::printf("could not carve a double diamond out of the topology\n");
    return 1;
  }

  auto PathStr = [&](const std::vector<SwitchId> &P) {
    std::string Out;
    for (SwitchId Sw : P)
      Out += (Out.empty() ? "" : "-") + S->Topo.switchName(Sw);
    return Out;
  };
  std::printf("forward flow: %s  ->  %s\n",
              PathStr(S->Flows[0].InitialPath).c_str(),
              PathStr(S->Flows[0].FinalPath).c_str());
  std::printf("reverse flow: %s  ->  %s\n",
              PathStr(S->Flows[1].InitialPath).c_str(),
              PathStr(S->Flows[1].FinalPath).c_str());
  std::printf("%u switches differ between the configurations\n\n",
              numUpdatingSwitches(*S));

  FormulaFactory FF;

  // Attempt 1: switch granularity. Provably impossible.
  {
    LabelingChecker Checker;
    SynthResult Res = synthesizeUpdate(*S, FF, Checker);
    std::printf("switch granularity: %s (early termination: %s, "
                "%llu checker calls)\n",
                Res.Status == SynthStatus::Impossible ? "IMPOSSIBLE"
                                                      : "unexpected!",
                Res.Stats.EarlyTerminated ? "yes" : "no",
                static_cast<unsigned long long>(Res.Stats.CheckCalls));
  }

  // Attempt 2: rule granularity. Solvable.
  {
    LabelingChecker Checker;
    SynthOptions Opts;
    Opts.RuleGranularity = true;
    SynthResult Res = synthesizeUpdate(*S, FF, Checker, Opts);
    if (!Res.ok()) {
      std::printf("rule granularity: unexpectedly failed\n");
      return 1;
    }
    std::printf("rule granularity: SOLVED in %zu commands "
                "(%u waits kept)\n",
                Res.Commands.size(), Res.Stats.WaitsAfterRemoval);
    std::printf("sequence: %s\n",
                commandSeqToString(S->Topo, Res.Commands).c_str());
  }
  return 0;
}
