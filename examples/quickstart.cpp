//===- examples/quickstart.cpp - First steps with netupd -------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 60-second tour, on the paper's running example (§2, Fig. 1):
/// build a small datacenter topology, route H1 -> H3 over the red path,
/// ask for the green path while preserving reachability, and let
/// ORDERUPDATE find an update order that never breaks connectivity.
///
/// Expected output: the synthesizer updates C2 *before* A1 (updating A1
/// first would forward packets into a core switch with no rules).
///
//===----------------------------------------------------------------------===//

#include "ltl/Parser.h"
#include "ltl/Properties.h"
#include "mc/LabelingChecker.h"
#include "synth/OrderUpdate.h"
#include "topo/Fig1.h"

#include <cstdio>

using namespace netupd;

int main() {
  // 1. The Figure 1 network with its red (initial) and green (final)
  //    configurations comes ready-made.
  Fig1Network Net = buildFig1();
  std::printf("topology: %u switches, %u hosts, %u links\n",
              Net.Topo.numSwitches(), Net.Topo.numHosts(),
              Net.Topo.numLinks());

  // 2. The invariant to preserve *throughout* the update, as an LTL
  //    formula over packet traces: packets entering at H1's port must
  //    eventually reach H3's port. The same formula can be built
  //    programmatically with reachabilityProperty().
  FormulaFactory FF;
  std::string Text = "port=" + std::to_string(Net.srcPort()) +
                     " -> F port=" + std::to_string(Net.dstPort());
  ParseResult Parsed = parseLtl(FF, Text);
  if (!Parsed.ok()) {
    std::printf("property parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  std::printf("property: %s\n", printFormula(Parsed.F).c_str());

  // 3. Synthesize. The incremental labeling checker (§5) is the default
  //    and fastest backend.
  LabelingChecker Checker;
  SynthResult Result = synthesizeUpdate(
      Net.Topo, Net.Red, Net.Green, {Net.FlowH1H3}, Parsed.F, Checker);

  if (!Result.ok()) {
    std::printf("no correct update order exists\n");
    return 1;
  }

  // 4. The command sequence is ready for the controller: switch-table
  //    updates, with a wait wherever in-flight packets matter.
  std::printf("synthesized update: %s\n",
              commandSeqToString(Net.Topo, Result.Commands).c_str());
  std::printf("model-checker calls: %llu (incremental relabelings)\n",
              static_cast<unsigned long long>(Result.Stats.CheckCalls));
  std::printf("waits: %u kept of %u candidate positions\n",
              Result.Stats.WaitsAfterRemoval,
              Result.Stats.WaitsBeforeRemoval);
  return 0;
}
