//===- examples/datacenter_maintenance.cpp - FatTree drain -----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The B4-style maintenance scenario the paper's introduction motivates:
/// on a FatTree(4) datacenter fabric, several tenant flows cross the
/// core; the operator wants to drain one core switch for maintenance by
/// re-routing every flow that crosses it, without ever breaking tenant
/// connectivity. The synthesizer orders the per-switch updates so that
/// each flow's path stays intact at every step, then the update executes
/// on the simulator under live traffic.
///
//===----------------------------------------------------------------------===//

#include "ltl/Properties.h"
#include "mc/LabelingChecker.h"
#include "sim/Simulator.h"
#include "support/Strings.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"
#include "topo/Scenario.h"

#include <cstdio>

using namespace netupd;

int main() {
  // FatTree(4): 4 cores, 8 aggregation, 8 edge switches. Core 0 is the
  // one being drained.
  Topology Topo = buildFatTree(4);
  const SwitchId DrainedCore = 0;

  // Three tenant flows between distinct pods, initially routed through
  // core 0, finally through other cores. Paths: edge -> agg -> core ->
  // agg -> edge. FatTree(4) layout (see buildFatTree): cores 0..3, then
  // per pod p: agg = 4 + 4p, 4 + 4p + 1 and edge = 4 + 4p + 2, 4 + 4p+3.
  auto Agg = [](unsigned Pod, unsigned I) { return 4 + 4 * Pod + I; };
  auto Edge = [](unsigned Pod, unsigned I) { return 4 + 4 * Pod + 2 + I; };

  Scenario S;
  S.Topo = Topo;
  S.Kind = PropertyKind::Reachability;
  S.Initial = Config(Topo.numSwitches());
  S.Final = Config(Topo.numSwitches());

  struct FlowPlan {
    unsigned SrcPod, DstPod;
  };
  // Aggregation switch 0 of each pod reaches cores {0, 1}; switch 1
  // reaches cores {2, 3}. Initial paths use agg 0 + core 0; final paths
  // use agg 1 + core 2, fully avoiding the drained core.
  const FlowPlan Plans[] = {{0, 1}, {1, 2}, {2, 3}};
  unsigned FlowIdx = 0;
  for (const FlowPlan &P : Plans) {
    FlowSpec F;
    F.Class.Hdr = makeHeader(10 + 2 * FlowIdx, 11 + 2 * FlowIdx);
    F.Class.Name = format("tenant%u", FlowIdx);
    F.SrcHost = S.Topo.addHost(format("src%u", FlowIdx));
    F.DstHost = S.Topo.addHost(format("dst%u", FlowIdx));
    F.SrcPort = S.Topo.attachHost(F.SrcHost, Edge(P.SrcPod, 0));
    F.DstPort = S.Topo.attachHost(F.DstHost, Edge(P.DstPod, 0));
    F.InitialPath = {Edge(P.SrcPod, 0), Agg(P.SrcPod, 0), DrainedCore,
                     Agg(P.DstPod, 0), Edge(P.DstPod, 0)};
    F.FinalPath = {Edge(P.SrcPod, 0), Agg(P.SrcPod, 1), /*core 2*/ 2,
                   Agg(P.DstPod, 1), Edge(P.DstPod, 0)};
    installPath(S.Topo, S.Initial, F.Class, F.InitialPath, F.DstHost);
    installPath(S.Topo, S.Final, F.Class, F.FinalPath, F.DstHost);
    S.Flows.push_back(std::move(F));
    ++FlowIdx;
  }

  std::printf("draining core %s: %u flows, %u switches to update\n",
              S.Topo.switchName(DrainedCore).c_str(),
              static_cast<unsigned>(S.Flows.size()),
              numUpdatingSwitches(S));

  FormulaFactory FF;
  LabelingChecker Checker;
  SynthResult Result = synthesizeUpdate(S, FF, Checker);
  if (!Result.ok()) {
    std::printf("no correct update order exists\n");
    return 1;
  }
  std::printf("synthesized update: %s\n",
              commandSeqToString(S.Topo, Result.Commands).c_str());

  // Verify the drained core really ends up unused.
  Config End = S.Initial;
  applyCommands(End, Result.Commands);
  std::printf("rules left on the drained core: %zu\n",
              End.table(DrainedCore).size());

  // Execute under live traffic from all three tenants.
  Simulator Sim(S.Topo, S.Initial, SimParams{/*UpdateLatencyTicks=*/20});
  Sim.enqueueCommands(Result.Commands);
  unsigned Sent = 0;
  for (unsigned Tick = 0; Tick != 300; ++Tick) {
    for (const FlowSpec &F : S.Flows) {
      Sim.injectPacket(F.SrcHost, F.Class.Hdr, Sent++);
    }
    Sim.step();
  }
  Sim.runToQuiescence();
  std::printf("traffic during the drain: %u sent, %zu delivered, %llu "
              "dropped\n",
              Sent, Sim.deliveries().size(),
              static_cast<unsigned long long>(Sim.droppedCount()));
  return Sim.droppedCount() == 0 ? 0 : 1;
}
