//===- examples/batch_portfolio.cpp - The batch engine in action -*- C++-*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serving many synthesis requests at once: build a batch of update
/// scenarios, hand them to the SynthEngine's worker pool, and let each
/// job race the standard backend portfolio — switch-granularity and
/// rule-granularity incremental checkers plus the batch checker. The
/// first configuration to find a correct order wins and cancels the
/// rest; instances where no switch-granularity order exists (the
/// Fig. 8(h) "double diamond") are won by the rule-granularity racer.
///
/// The run is also observed: EngineOptions::TraceFile turns on span
/// tracing for the engine's lifetime and dumps a Chrome-trace JSON on
/// destruction (open it at ui.perfetto.dev to see jobs, portfolio
/// members, and searches nested on a timeline), and the metrics
/// registry snapshot at the end is the JSON a synthesis daemon would
/// serve from its stats endpoint.
///
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "obs/Metrics.h"
#include "topo/Generators.h"

#include <cstdio>

using namespace netupd;

int main() {
  // 1. A mixed workload: ordinary diamonds (feasible at switch
  //    granularity) and adversarial double diamonds (feasible only at
  //    rule granularity).
  std::vector<SynthJob> Jobs;
  Rng R(42);
  for (unsigned I = 0; I != 4; ++I) {
    Rng Fork = R.fork();
    Topology Base = buildSmallWorld(30, 4, 0.2, Fork);
    std::optional<Scenario> S =
        makeDiamondScenario(Base, Fork, PropertyKind::Waypoint);
    if (!S)
      continue;
    SynthJob Job;
    Job.Name = "diamond-" + std::to_string(I);
    Job.S = std::move(*S);
    Job.Portfolio = defaultPortfolio();
    Jobs.push_back(std::move(Job));
  }
  for (unsigned I = 0; I != 2; ++I) {
    Rng Fork = R.fork();
    Topology Base = buildSmallWorld(30, 4, 0.2, Fork);
    std::optional<Scenario> S = makeDoubleDiamondScenario(Base, Fork);
    if (!S)
      continue;
    SynthJob Job;
    Job.Name = "double-diamond-" + std::to_string(I);
    Job.S = std::move(*S);
    Job.Portfolio = defaultPortfolio();
    Jobs.push_back(std::move(Job));
  }

  // 2. Run the whole batch on a fixed-size worker pool, with span
  //    tracing on: the engine writes every span recorded during its
  //    lifetime to the trace file when it is destroyed. Reports come
  //    back in job order whatever the scheduling.
  EngineOptions EO;
  EO.NumWorkers = 4;
  EO.TraceFile = "batch_portfolio_trace.json";
  BatchReport Rep;
  std::string Snapshot;
  {
    SynthEngine Engine(EO);
    Rep = Engine.run(Jobs);

    // 3. Inspect the verdicts.
    std::printf("%zu jobs on %u workers: %u synthesized, %.3fs wall\n",
                Jobs.size(), Engine.numWorkers(), Rep.numSucceeded(),
                Rep.WallSeconds);
    for (const SynthReport &Report : Rep.Reports) {
      std::printf("  %-18s %-9s won by %-18s (%zu commands, %.3fs)\n",
                  Report.JobName.c_str(),
                  Report.ok() ? "success" : "infeasible",
                  Report.ok() ? Report.Winner.c_str() : "-",
                  Report.Result.Commands.size(), Report.Seconds);
    }
    std::printf("checker queries across all racers: %llu\n",
                static_cast<unsigned long long>(Rep.TotalQueries));

    // 4. What the process observed about itself: job latencies, queue
    //    waits, and cache counters, as the daemon-ready JSON payload.
    //    Sampled while the engine lives — its result cache unregisters
    //    from the registry on destruction.
    Snapshot = obs::MetricsRegistry::instance().snapshotJson();
  } // Engine destroyed: batch_portfolio_trace.json written here.

  std::printf("\ntrace timeline: batch_portfolio_trace.json "
              "(open in ui.perfetto.dev)\n");
  std::printf("metrics snapshot:\n%s\n", Snapshot.c_str());
  return Rep.numSucceeded() == Rep.Reports.size() ? 0 : 1;
}
