//===- examples/waypoint_migration.cpp - Waits and waypoints ---*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §2 "In-flight Packets and Waits" scenario: shift H1 -> H3 traffic
/// from the red path (T1-A1-C1-A3-T3) to the blue path (T1-A2-C1-A4-T3)
/// while (a) preserving connectivity and (b) making sure every packet
/// traverses A3 or A4 — think of those switches as scrubbing middleboxes.
///
/// No consistent (per-packet) update exists here, but an ordering update
/// does — with one genuine wait: after T1 flips to A2, packets already
/// forwarded through A1 are still heading for C1, so C1 must not flip to
/// A4 until they drain. The paper's tool emits: upd A2, upd A4, upd T1,
/// wait, upd C1. This example synthesizes the sequence, shows the wait
/// survive the removal heuristic, and replays everything on the
/// operational-semantics simulator to confirm zero violations.
///
//===----------------------------------------------------------------------===//

#include "ltl/Properties.h"
#include "ltl/TraceEval.h"
#include "mc/LabelingChecker.h"
#include "sim/Simulator.h"
#include "synth/OrderUpdate.h"
#include "topo/Fig1.h"

#include <cstdio>

using namespace netupd;

int main() {
  Fig1Network Net = buildFig1();

  // Connectivity plus "visit A3 or A4".
  FormulaFactory FF;
  Formula Phi = eitherWaypointProperty(FF, Net.srcPort(), Net.A[2],
                                       Net.A[3], Net.dstPort());
  std::printf("property: %s\n", printFormula(Phi).c_str());

  LabelingChecker Checker;
  SynthResult Result = synthesizeUpdate(Net.Topo, Net.Red, Net.Blue,
                                        {Net.FlowH1H3}, Phi, Checker);
  if (!Result.ok()) {
    std::printf("no correct update order exists\n");
    return 1;
  }
  std::printf("synthesized update: %s\n",
              commandSeqToString(Net.Topo, Result.Commands).c_str());
  std::printf("waits kept by the removal heuristic: %u of %u\n",
              Result.Stats.WaitsAfterRemoval,
              Result.Stats.WaitsBeforeRemoval);

  // Replay on the simulator with a continuous probe stream and verify
  // every delivered packet's trace against the property.
  Simulator Sim(Net.Topo, Net.Red, SimParams{/*UpdateLatencyTicks=*/25});
  Sim.enqueueCommands(Result.Commands);
  const unsigned Probes = 300;
  for (unsigned Tick = 0; Tick != Probes; ++Tick) {
    Sim.injectPacket(Net.H[0], Net.FlowH1H3.Hdr, Tick);
    Sim.step();
  }
  Sim.runToQuiescence();

  unsigned Violations = 0;
  for (unsigned P = 0; P != Probes; ++P) {
    Trace T;
    for (const Observation &Obs : Sim.packetTrace(P))
      T.push_back(StateInfo{Obs.Sw, Obs.Pt, Obs.Hdr});
    if (T.empty() || !evalOnTrace(Phi, T))
      ++Violations;
  }
  std::printf("probes: %u sent, %zu delivered, %llu dropped, "
              "%u property violations\n",
              Probes, Sim.deliveries().size(),
              static_cast<unsigned long long>(Sim.droppedCount()),
              Violations);
  return Violations == 0 && Sim.droppedCount() == 0 ? 0 : 1;
}
